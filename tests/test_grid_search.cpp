#include "core/grid_search.h"

#include <gtest/gtest.h>

namespace eefei::core {
namespace {

EnergyObjective make_objective(double a1 = 0.005, double b1 = 0.381,
                               std::size_t n = 20) {
  energy::ConvergenceConstants c = energy::paper_reference_constants();
  c.a1 = a1;
  const ConvergenceBound bound(c, 0.05);
  return EnergyObjective(bound, 7.79e-5 * 3000.0 + 3.34e-3, b1, n);
}

TEST(GridSearch, FindsAMinimizer) {
  const auto obj = make_objective();
  const auto r = grid_search(obj);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->best.k, 1u);
  EXPECT_LE(r->best.k, 20u);
  EXPECT_GE(r->best.e, 1u);
  EXPECT_GT(r->evaluated, 100u);

  // No lattice point in a local window beats it.
  const double best = r->best.objective;
  for (std::size_t k = 1; k <= 20; ++k) {
    for (std::size_t e = 1; e <= 90; ++e) {
      const auto kd = static_cast<double>(k);
      const auto ed = static_cast<double>(e);
      if (!obj.feasible(kd, ed)) continue;
      const auto t = obj.bound().optimal_rounds_int(kd, ed);
      if (!t.ok()) continue;
      const double v =
          obj.value_at_rounds(kd, ed, static_cast<double>(t.value()));
      EXPECT_GE(v, best - 1e-9) << "k=" << k << " e=" << e;
    }
  }
}

TEST(GridSearch, MaxEpochsCapRespected) {
  const auto obj = make_objective();
  GridSearchConfig cfg;
  cfg.max_epochs = 3;
  const auto r = grid_search(obj, cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->best.e, 3u);
}

TEST(GridSearch, ContinuousRoundsScoring) {
  const auto obj = make_objective();
  GridSearchConfig cfg;
  cfg.integer_rounds = false;
  const auto r = grid_search(obj, cfg);
  ASSERT_TRUE(r.ok());
  // Continuous scoring equals Eq. 12 exactly at the best point.
  const auto v = obj.value(static_cast<double>(r->best.k),
                           static_cast<double>(r->best.e));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(r->best.objective, v.value(), 1e-9);
}

TEST(GridSearch, InfeasibleProblem) {
  const auto obj = make_objective(5.0);  // A1/N = 0.25 > ε
  EXPECT_FALSE(grid_search(obj).ok());
}

TEST(GridSearch, CountsInfeasiblePoints) {
  const auto obj = make_objective();
  const auto r = grid_search(obj);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->infeasible, 0u)
      << "scan is bounded by E_max so nothing should be rejected";
}

TEST(Sweep, ReturnsOnlyFeasiblePoints) {
  const auto obj = make_objective();
  const auto rows = sweep(obj, {1, 10, 20}, {1, 40, 5000});
  // E = 5000 is infeasible for every K → 3 K-values × 2 feasible E.
  EXPECT_EQ(rows.size(), 6u);
  for (const auto& p : rows) {
    EXPECT_TRUE(obj.feasible(static_cast<double>(p.k),
                             static_cast<double>(p.e)));
    EXPECT_GT(p.objective, 0.0);
    EXPECT_GE(p.t, 1u);
  }
}

TEST(Sweep, EnergyCurveOverKIsConvexShaped) {
  // Fig. 5's x-axis: energy as a function of K at fixed E.  With IID
  // calibration the curve increases from K = 1 (K* = 1).
  const auto obj = make_objective();
  std::vector<std::size_t> ks;
  for (std::size_t k = 1; k <= 20; ++k) ks.push_back(k);
  const auto rows = sweep(obj, ks, {10}, /*integer_rounds=*/false);
  ASSERT_EQ(rows.size(), 20u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].objective, rows[i - 1].objective);
  }
}

}  // namespace
}  // namespace eefei::core
