// Tests for the network substrate: message framing, WiFi LAN link, NB-IoT
// uplink, device fleets and the topology.
#include <gtest/gtest.h>

#include <cmath>

#include "net/channel.h"
#include "net/iot_device.h"
#include "net/message.h"
#include "net/topology.h"

namespace eefei::net {
namespace {

TEST(Message, WireBytesIncludeHeader) {
  Message m;
  m.payload_bytes = 1000;
  EXPECT_DOUBLE_EQ(m.wire_bytes().value(), 1024.0);
}

TEST(Message, TypeNames) {
  EXPECT_STREQ(to_string(MessageType::kGlobalModel), "global_model");
  EXPECT_STREQ(to_string(MessageType::kLocalModel), "local_model");
  EXPECT_STREQ(to_string(MessageType::kSensorData), "sensor_data");
  EXPECT_STREQ(to_string(MessageType::kSelectionNotice), "selection_notice");
  EXPECT_STREQ(to_string(MessageType::kAck), "ack");
}

TEST(WifiLan, NominalDuration) {
  WifiLanConfig cfg;
  cfg.rate = BitsPerSecond::from_mbps(8.0);
  cfg.base_latency = Seconds::from_millis(2.0);
  WifiLan lan(cfg, Rng(1));
  // 1000 bytes at 8 Mbps = 1 ms, + 2 ms latency.
  EXPECT_NEAR(lan.nominal_duration(Bytes{1000.0}).value(), 0.003, 1e-12);
}

TEST(WifiLan, LosslessTransferIsOneAttempt) {
  WifiLanConfig cfg;
  cfg.loss_probability = 0.0;
  WifiLan lan(cfg, Rng(2));
  Message m;
  m.payload_bytes = 500;
  const auto r = lan.transfer(m);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_NEAR(r.duration.value(),
              lan.nominal_duration(m.wire_bytes()).value(), 1e-12);
}

TEST(WifiLan, LossyTransferRetries) {
  WifiLanConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.max_retries = 20;
  WifiLan lan(cfg, Rng(3));
  Message m;
  m.payload_bytes = 100;
  double mean_attempts = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    const auto r = lan.transfer(m);
    EXPECT_TRUE(r.delivered);
    mean_attempts += static_cast<double>(r.attempts);
  }
  mean_attempts /= kN;
  EXPECT_NEAR(mean_attempts, 2.0, 0.1);  // geometric mean 1/(1-p)
}

TEST(WifiLan, GivesUpAfterMaxRetries) {
  WifiLanConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_retries = 3;
  WifiLan lan(cfg, Rng(4));
  Message m;
  const auto r = lan.transfer(m);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.attempts, 4u);  // initial + 3 retries
}

TEST(WifiLan, WastedIsZeroOnCleanDelivery) {
  WifiLanConfig cfg;
  cfg.loss_probability = 0.0;
  WifiLan lan(cfg, Rng(12));
  Message m;
  m.payload_bytes = 500;
  const auto r = lan.transfer(m);
  EXPECT_TRUE(r.delivered);
  EXPECT_DOUBLE_EQ(r.wasted.value(), 0.0);
}

TEST(WifiLan, WastedCountsFailedAttemptAirTimeOnly) {
  // Regression for the retry-vs-useful energy split: on a lossy delivery
  // `wasted` must be exactly the air time of the attempts that failed —
  // duration minus one clean attempt — so the engines can book it as
  // kRetry without double-charging the useful share.
  WifiLanConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.max_retries = 20;
  WifiLan lan(cfg, Rng(13));
  Message m;
  m.payload_bytes = 300;
  const double once = lan.nominal_duration(m.wire_bytes()).value();
  bool saw_retry = false;
  for (int i = 0; i < 200; ++i) {
    const auto r = lan.transfer(m);
    ASSERT_TRUE(r.delivered);
    EXPECT_NEAR(r.wasted.value(), r.duration.value() - once, 1e-12);
    EXPECT_EQ(r.wasted.value() == 0.0, r.attempts == 1u);
    saw_retry = saw_retry || r.attempts > 1u;
  }
  EXPECT_TRUE(saw_retry);
}

TEST(WifiLan, DroppedTransferIsAllWaste) {
  WifiLanConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_retries = 3;
  WifiLan lan(cfg, Rng(14));
  Message m;
  const auto r = lan.transfer(m);
  EXPECT_FALSE(r.delivered);
  EXPECT_DOUBLE_EQ(r.wasted.value(), r.duration.value());
}

TEST(WifiLanConfig, ValidateRejectsNonPhysicalConfigs) {
  WifiLanConfig ok;
  EXPECT_TRUE(ok.validate().ok());
  ok.loss_probability = 0.0;
  EXPECT_TRUE(ok.validate().ok());
  ok.loss_probability = 1.0;  // boundary: a certain-loss link is legal
  EXPECT_TRUE(ok.validate().ok());

  WifiLanConfig bad = ok;
  bad.rate = BitsPerSecond{0.0};
  EXPECT_FALSE(bad.validate().ok());
  bad = ok;
  bad.base_latency = Seconds{-0.001};
  EXPECT_FALSE(bad.validate().ok());
  bad = ok;
  bad.loss_probability = -0.1;
  EXPECT_FALSE(bad.validate().ok());
  bad.loss_probability = 1.1;
  EXPECT_FALSE(bad.validate().ok());
}

TEST(NbIot, CleanChannelEnergyMatchesRho) {
  NbIotConfig cfg;
  cfg.collision_probability = 0.0;
  NbIotChannel ch(cfg, Rng(5));
  const auto r = ch.send(Bytes{785.0});
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.attempts, 1u);
  // 7.74 mJ/byte × 785 bytes.
  EXPECT_NEAR(r.device_energy.value(), 6.0759, 1e-9);
  EXPECT_NEAR(ch.expected_energy(Bytes{785.0}).value(), 6.0759, 1e-9);
}

TEST(NbIot, CollisionsInflateExpectedEnergy) {
  NbIotConfig cfg;
  cfg.collision_probability = 0.25;
  cfg.max_retries = 50;
  NbIotChannel ch(cfg, Rng(6));
  const Joules clean = Joules{cfg.energy_per_byte.value() * 100.0};
  const Joules expected = ch.expected_energy(Bytes{100.0});
  // Expected attempts ≈ 1/(1-p) = 4/3.
  EXPECT_NEAR(expected.value() / clean.value(), 4.0 / 3.0, 1e-6);

  // Empirical check.
  double total = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    total += ch.send(Bytes{100.0}).device_energy.value();
  }
  EXPECT_NEAR(total / kN, expected.value(), expected.value() * 0.05);
}

TEST(NbIot, ExpectedEnergyTruncatedByMaxRetries) {
  NbIotConfig cfg;
  cfg.collision_probability = 0.5;
  cfg.max_retries = 0;  // single attempt only
  NbIotChannel ch(cfg, Rng(7));
  EXPECT_NEAR(ch.expected_energy(Bytes{10.0}).value(),
              cfg.energy_per_byte.value() * 10.0, 1e-12);
}

TEST(NbIot, WastedEnergySplitsFailedAttemptsFromUsefulWork) {
  NbIotConfig cfg;
  cfg.collision_probability = 0.5;
  cfg.max_retries = 20;
  NbIotChannel ch(cfg, Rng(15));
  const double clean = cfg.energy_per_byte.value() * 200.0;
  bool saw_retry = false;
  for (int i = 0; i < 200; ++i) {
    const auto r = ch.send(Bytes{200.0});
    ASSERT_TRUE(r.delivered);
    EXPECT_NEAR(r.wasted_energy.value(), r.device_energy.value() - clean,
                1e-12);
    EXPECT_NEAR(r.wasted.value(),
                r.duration.value() / static_cast<double>(r.attempts) *
                    static_cast<double>(r.attempts - 1),
                1e-12);
    saw_retry = saw_retry || r.attempts > 1u;
  }
  EXPECT_TRUE(saw_retry);
}

TEST(NbIot, HopelessUplinkIsAllWaste) {
  NbIotConfig cfg;
  cfg.collision_probability = 1.0;
  cfg.max_retries = 2;
  NbIotChannel ch(cfg, Rng(16));
  const auto r = ch.send(Bytes{50.0});
  EXPECT_FALSE(r.delivered);
  EXPECT_DOUBLE_EQ(r.wasted.value(), r.duration.value());
  EXPECT_DOUBLE_EQ(r.wasted_energy.value(), r.device_energy.value());
}

TEST(NbIotConfig, ValidateRejectsNonPhysicalConfigs) {
  NbIotConfig ok;
  EXPECT_TRUE(ok.validate().ok());
  ok.collision_probability = 1.0;  // boundary
  EXPECT_TRUE(ok.validate().ok());

  NbIotConfig bad;
  bad.energy_per_byte = JoulesPerByte{0.0};
  EXPECT_FALSE(bad.validate().ok());
  bad = NbIotConfig{};
  bad.rate = BitsPerSecond{0.0};
  EXPECT_FALSE(bad.validate().ok());
  bad = NbIotConfig{};
  bad.collision_probability = 1.5;
  EXPECT_FALSE(bad.validate().ok());
}

TEST(ExpectedAttempts, ClosedFormMatchesTruncatedGeometricSeries) {
  // Σ_{k=1..A} p^{k-1}; the final attempt counts whether it succeeds or
  // not, matching send()/transfer() spending energy on a last failure.
  EXPECT_DOUBLE_EQ(expected_transmission_attempts(0.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(expected_transmission_attempts(0.7, 1), 1.0);
  EXPECT_DOUBLE_EQ(expected_transmission_attempts(1.0, 4), 4.0);
  EXPECT_DOUBLE_EQ(expected_transmission_attempts(0.5, 3), 1.75);
  EXPECT_DOUBLE_EQ(expected_transmission_attempts(0.6, 3), 1.96);
}

TEST(ExpectedAttempts, MatchesEmpiricalSendMean) {
  // The closed form the energy model uses and the Bernoulli loop send()
  // actually runs must agree: p = 0.6 truncated at 3 attempts gives
  // E[attempts] = 1 + 0.6 + 0.36 = 1.96 (stddev ≈ 0.87, so 20k trials put
  // the standard error near 0.006 — the 0.03 tolerance is ~5σ).
  NbIotConfig cfg;
  cfg.collision_probability = 0.6;
  cfg.max_retries = 2;
  NbIotChannel ch(cfg, Rng(17));
  const double clean = cfg.energy_per_byte.value() * 100.0;
  double mean_attempts = 0.0;
  double mean_energy = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto r = ch.send(Bytes{100.0});
    mean_attempts += static_cast<double>(r.attempts);
    mean_energy += r.device_energy.value();
  }
  mean_attempts /= kN;
  mean_energy /= kN;
  const double expected = expected_transmission_attempts(0.6, 3);
  EXPECT_NEAR(mean_attempts, expected, 0.03);
  EXPECT_NEAR(mean_energy, clean * expected, clean * 0.03);
  EXPECT_NEAR(mean_energy, ch.expected_energy(Bytes{100.0}).value(),
              clean * 0.03);
}

TEST(DeviceFleet, CollectDeliversExactlyN) {
  IotDeviceConfig cfg;
  cfg.uplink.collision_probability = 0.2;
  DeviceFleet fleet(5, cfg, Rng(8));
  const auto r = fleet.collect(100);
  EXPECT_EQ(r.samples_requested, 100u);
  EXPECT_EQ(r.samples_delivered, 100u);
  EXPECT_GT(r.total_energy.value(), 0.0);
  EXPECT_GT(r.duration.value(), 0.0);
}

TEST(DeviceFleet, EnergyScalesWithSamples) {
  IotDeviceConfig cfg;
  cfg.uplink.collision_probability = 0.0;
  DeviceFleet fleet(4, cfg, Rng(9));
  const auto small = fleet.collect(10);
  const auto large = fleet.collect(100);
  EXPECT_NEAR(large.total_energy.value() / small.total_energy.value(), 10.0,
              1e-9);
  // Clean channel: energy = n × ρ.
  EXPECT_NEAR(small.total_energy.value(),
              10.0 * fleet.expected_energy_per_sample().value(), 1e-9);
}

TEST(DeviceFleet, SpreadsLoadAcrossDevices) {
  IotDeviceConfig cfg;
  cfg.uplink.collision_probability = 0.0;
  DeviceFleet fleet(4, cfg, Rng(10));
  (void)fleet.collect(40);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet.device(i).samples_sent(), 10u);
  }
}

TEST(DeviceFleet, HopelessChannelTerminates) {
  IotDeviceConfig cfg;
  cfg.uplink.collision_probability = 1.0;
  cfg.uplink.max_retries = 2;
  DeviceFleet fleet(2, cfg, Rng(11));
  const auto r = fleet.collect(5);
  EXPECT_LT(r.samples_delivered, 5u);  // gave up, but did not hang
  EXPECT_GT(r.total_energy.value(), 0.0);  // wasted energy is accounted
}

TEST(Topology, BuildsRequestedShape) {
  TopologyConfig cfg;
  cfg.num_edge_servers = 6;
  cfg.devices_per_edge = 3;
  Topology topo(cfg);
  EXPECT_EQ(topo.num_edge_servers(), 6u);
  for (std::size_t e = 0; e < 6; ++e) {
    EXPECT_EQ(topo.fleet(e).size(), 3u);
  }
}

TEST(Topology, ValidatePropagatesToEveryChannelConfig) {
  TopologyConfig ok;
  EXPECT_TRUE(ok.validate().ok());

  TopologyConfig bad_lan = ok;
  bad_lan.lan.loss_probability = 2.0;
  EXPECT_FALSE(bad_lan.validate().ok());

  TopologyConfig bad_uplink = ok;
  bad_uplink.device.uplink.rate = BitsPerSecond{0.0};
  EXPECT_FALSE(bad_uplink.validate().ok());

  TopologyConfig bad_faults = ok;
  bad_faults.link_faults.max_attempts = 0;
  EXPECT_FALSE(bad_faults.validate().ok());
}

TEST(Topology, IndependentFleetStreams) {
  TopologyConfig cfg;
  cfg.num_edge_servers = 2;
  cfg.devices_per_edge = 1;
  cfg.device.uplink.collision_probability = 0.5;
  cfg.device.uplink.max_retries = 20;
  Topology topo(cfg);
  // Same request on two fleets: attempts differ (independent RNG streams).
  const auto a = topo.fleet(0).collect(50);
  const auto b = topo.fleet(1).collect(50);
  EXPECT_NE(a.total_energy.value(), b.total_energy.value());
}

}  // namespace
}  // namespace eefei::net
