#include "common/config.h"

#include <gtest/gtest.h>

namespace eefei {
namespace {

TEST(Config, ParseBasic) {
  const auto cfg = Config::parse("k=10 e=40\ntarget_acc=0.92\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->get_int("k").value(), 10);
  EXPECT_EQ(cfg->get_int("e").value(), 40);
  EXPECT_DOUBLE_EQ(cfg->get_double("target_acc").value(), 0.92);
}

TEST(Config, Comments) {
  const auto cfg = Config::parse("# a comment\nk=3 # trailing\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->get_int("k").value(), 3);
  EXPECT_EQ(cfg->size(), 1u);
}

TEST(Config, FromArgs) {
  const char* argv[] = {"prog", "k=5", "--epochs=20", "-mode=iid"};
  const auto cfg = Config::from_args(4, argv);
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->get_int("k").value(), 5);
  EXPECT_EQ(cfg->get_int("epochs").value(), 20);
  EXPECT_EQ(cfg->get_string("mode").value(), "iid");
}

TEST(Config, Booleans) {
  const auto cfg = Config::parse("a=true b=0 c=YES d=off");
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->get_bool("a").value());
  EXPECT_FALSE(cfg->get_bool("b").value());
  EXPECT_TRUE(cfg->get_bool("c").value());
  EXPECT_FALSE(cfg->get_bool("d").value());
}

TEST(Config, Fallbacks) {
  const auto cfg = Config::parse("k=5");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->get_int_or("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg->get_double_or("missing", 1.5), 1.5);
  EXPECT_EQ(cfg->get_string_or("missing", "dflt"), "dflt");
  EXPECT_TRUE(cfg->get_bool_or("missing", true));
  EXPECT_EQ(cfg->get_int_or("k", 0), 5);
}

TEST(Config, Errors) {
  EXPECT_FALSE(Config::parse("novalue").ok());
  EXPECT_FALSE(Config::parse("=5").ok());
  const auto cfg = Config::parse("k=abc b=1.5.2");
  ASSERT_TRUE(cfg.ok());
  EXPECT_FALSE(cfg->get_int("k").ok());
  EXPECT_FALSE(cfg->get_double("b").ok());
  EXPECT_FALSE(cfg->get_bool("k").ok());
  EXPECT_FALSE(cfg->get_string("missing").ok());
}

TEST(Config, OverwriteAndKeys) {
  auto cfg = Config::parse("a=1 b=2").value();
  cfg.set("a", "3");
  EXPECT_EQ(cfg.get_int("a").value(), 3);
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_TRUE(cfg.contains("b"));
  EXPECT_FALSE(cfg.contains("c"));
}

}  // namespace
}  // namespace eefei
