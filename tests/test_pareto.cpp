#include "core/pareto.h"

#include <gtest/gtest.h>

namespace eefei::core {
namespace {

EnergyObjective reference_objective(double a1 = 0.005) {
  energy::ConvergenceConstants c = energy::paper_reference_constants();
  c.a1 = a1;
  const ConvergenceBound bound(c, 0.05);
  return EnergyObjective(bound, 7.79e-5 * 3000.0 + 3.34e-3, 0.381, 20);
}

RoundTimeModel reference_time_model() {
  RoundTimeModel tm;
  tm.samples_per_server = 3000;
  return tm;
}

TEST(Pareto, FrontierIsNonDominatedAndSorted) {
  const auto r = pareto_sweep(reference_objective(), reference_time_model());
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->frontier.size(), 2u);
  for (std::size_t i = 1; i < r->frontier.size(); ++i) {
    // Makespan increases along the frontier while energy strictly falls.
    EXPECT_GE(r->frontier[i].makespan.value(),
              r->frontier[i - 1].makespan.value());
    EXPECT_LT(r->frontier[i].energy_j, r->frontier[i - 1].energy_j);
  }
}

TEST(Pareto, NoPointDominatesAFrontierPoint) {
  const auto r = pareto_sweep(reference_objective(), reference_time_model());
  ASSERT_TRUE(r.ok());
  for (const auto& f : r->frontier) {
    for (const auto& p : r->points) {
      const bool dominates = p.energy_j < f.energy_j - 1e-9 &&
                             p.makespan.value() < f.makespan.value() - 1e-12;
      EXPECT_FALSE(dominates)
          << "(" << p.k << "," << p.e << ") dominates (" << f.k << "," << f.e
          << ")";
    }
  }
}

TEST(Pareto, EnergyMinimizerIsOnTheFrontier) {
  const auto obj = reference_objective();
  const auto r = pareto_sweep(obj, reference_time_model());
  ASSERT_TRUE(r.ok());
  double best_energy = 1e18;
  for (const auto& p : r->points) best_energy = std::min(best_energy, p.energy_j);
  EXPECT_NEAR(r->frontier.back().energy_j, best_energy, 1e-9)
      << "the frontier's cheapest point must be the global energy optimum";
}

TEST(Pareto, RoundDurationModel) {
  RoundTimeModel tm;
  tm.samples_per_server = 1000;
  const Seconds d1 = tm.round_duration(1, 10);
  const Seconds d2 = tm.round_duration(2, 10);
  // Two servers add one more download + upload slot.
  EXPECT_NEAR((d2 - d1).value(), (tm.download + tm.upload).value(), 1e-12);
  const Seconds e2 = tm.round_duration(1, 20);
  EXPECT_GT(e2.value(), d1.value());
}

TEST(Pareto, MaxEpochsCap) {
  const auto r =
      pareto_sweep(reference_objective(), reference_time_model(), 5);
  ASSERT_TRUE(r.ok());
  for (const auto& p : r->points) EXPECT_LE(p.e, 5u);
}

TEST(Pareto, InfeasibleProblem) {
  const auto r =
      pareto_sweep(reference_objective(5.0), reference_time_model());
  EXPECT_FALSE(r.ok());
}

TEST(Pareto, RenderShowsRows) {
  const auto r = pareto_sweep(reference_objective(), reference_time_model());
  ASSERT_TRUE(r.ok());
  const std::string s = r->render_frontier(10);
  EXPECT_NE(s.find("Pareto frontier"), std::string::npos);
  EXPECT_NE(s.find("makespan_s"), std::string::npos);
}

}  // namespace
}  // namespace eefei::core
