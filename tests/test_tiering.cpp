// TierPlan mapping/fan-in/participation invariants, the lazy idle-charge
// schedule's fold-equals-replay bit contract, and the O(K) Floyd sampler.
#include "fl/tiering.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "common/rng.h"
#include "energy/idle_settlement.h"
#include "fl/selection.h"

namespace eefei::fl {
namespace {

TEST(TierPlan, ContiguousBlockMapping) {
  TierConfig cfg;
  cfg.gateway_fanin = 64;
  cfg.region_fanin = 8;
  TierPlan plan(1000, cfg);

  EXPECT_EQ(plan.num_servers(), 1000u);
  EXPECT_EQ(plan.num_gateways(), 16u);  // ceil(1000 / 64)
  EXPECT_EQ(plan.num_regions(), 2u);    // ceil(16 / 8)
  EXPECT_EQ(plan.root_fanin(), 2u);

  EXPECT_EQ(plan.gateway_of(0), 0u);
  EXPECT_EQ(plan.gateway_of(63), 0u);
  EXPECT_EQ(plan.gateway_of(64), 1u);
  EXPECT_EQ(plan.gateway_of(999), 15u);
  EXPECT_EQ(plan.region_of_gateway(7), 0u);
  EXPECT_EQ(plan.region_of_gateway(8), 1u);
  EXPECT_EQ(plan.region_of(999), 1u);
}

TEST(TierPlan, FanInsAreBoundedAndSumToTheFleet) {
  for (const std::size_t n : {1u, 7u, 64u, 65u, 1000u, 4097u}) {
    TierConfig cfg;
    cfg.gateway_fanin = 64;
    cfg.region_fanin = 8;
    TierPlan plan(n, cfg);

    std::size_t server_sum = 0;
    for (std::size_t g = 0; g < plan.num_gateways(); ++g) {
      EXPECT_LE(plan.gateway_fanin(g), cfg.gateway_fanin);
      EXPECT_GE(plan.gateway_fanin(g), 1u);
      server_sum += plan.gateway_fanin(g);
    }
    EXPECT_EQ(server_sum, n) << "n=" << n;

    std::size_t gateway_sum = 0;
    for (std::size_t r = 0; r < plan.num_regions(); ++r) {
      EXPECT_LE(plan.region_fanin(r), cfg.region_fanin);
      EXPECT_GE(plan.region_fanin(r), 1u);
      gateway_sum += plan.region_fanin(r);
    }
    EXPECT_EQ(gateway_sum, plan.num_gateways()) << "n=" << n;
  }
}

TEST(TierPlan, ParticipationCountsSelectedChildrenSorted) {
  TierConfig cfg;
  cfg.gateway_fanin = 4;
  cfg.region_fanin = 2;
  TierPlan plan(32, cfg);  // 8 gateways, 4 regions

  // Out-of-order selection: 3 servers under gateway 0, one each under
  // gateways 5 and 7 (regions 0, 2, 3).
  const std::vector<ClientId> selected = {23, 1, 0, 20, 3, 28};
  const auto part = plan.participation(selected);

  ASSERT_EQ(part.gateways.size(), 3u);
  EXPECT_EQ(part.gateways[0].id, 0u);
  EXPECT_EQ(part.gateways[0].expected, 3u);
  EXPECT_EQ(part.gateways[1].id, 5u);
  EXPECT_EQ(part.gateways[1].expected, 2u);  // servers 20 and 23
  EXPECT_EQ(part.gateways[2].id, 7u);
  EXPECT_EQ(part.gateways[2].expected, 1u);

  ASSERT_EQ(part.regions.size(), 3u);
  EXPECT_EQ(part.regions[0].id, 0u);
  EXPECT_EQ(part.regions[0].expected, 1u);  // gateway 0 only
  EXPECT_EQ(part.regions[1].id, 2u);
  EXPECT_EQ(part.regions[1].expected, 1u);  // gateway 5
  EXPECT_EQ(part.regions[2].id, 3u);
  EXPECT_EQ(part.regions[2].expected, 1u);  // gateway 7
  EXPECT_EQ(part.root_expected, 3u);

  // Order-independence: participation depends only on the set.
  const std::vector<ClientId> shuffled = {28, 3, 20, 0, 1, 23};
  const auto part2 = plan.participation(shuffled);
  ASSERT_EQ(part2.gateways.size(), part.gateways.size());
  for (std::size_t i = 0; i < part.gateways.size(); ++i) {
    EXPECT_EQ(part2.gateways[i].id, part.gateways[i].id);
    EXPECT_EQ(part2.gateways[i].expected, part.gateways[i].expected);
  }
  EXPECT_EQ(part2.root_expected, part.root_expected);
}

TEST(TierPlan, InvalidFanInRejected) {
  EXPECT_FALSE((TierConfig{0, 8}).valid());
  EXPECT_FALSE((TierConfig{8, 0}).valid());
  EXPECT_TRUE((TierConfig{1, 1}).valid());
}

// ------------------------------------------------- lazy idle settlement

TEST(IdleChargeSchedule, FoldEqualsPerRoundReplayBitwise) {
  const Watts p_wait{1.7};
  energy::IdleChargeSchedule sched(p_wait);
  Rng rng(42);
  for (int r = 0; r < 257; ++r) {
    sched.push_round(Seconds{0.1 + 40.0 * rng.uniform()});
  }
  ASSERT_EQ(sched.rounds(), 257u);

  // An untouched ledger cell accumulates left to right from exact zero —
  // the schedule's incremental fold must land on the same bits.
  Joules replay{0.0};
  for (const Joules c : sched.per_round()) replay += c;
  EXPECT_EQ(replay.value(), sched.all_rounds_total().value());

  // A partial replay (server selected mid-run) is a prefix of the same
  // sequence; suffix replay continues bit-exactly.
  Joules prefix{0.0};
  const auto charges = sched.per_round();
  for (std::size_t r = 0; r < 100; ++r) prefix += charges[r];
  for (std::size_t r = 100; r < charges.size(); ++r) prefix += charges[r];
  EXPECT_EQ(prefix.value(), sched.all_rounds_total().value());
}

TEST(IdleChargeSchedule, PerRoundChargeIsPowerTimesDuration) {
  energy::IdleChargeSchedule sched(Watts{2.0});
  sched.push_round(Seconds{3.0});
  sched.push_round(Seconds{0.5});
  ASSERT_EQ(sched.rounds(), 2u);
  EXPECT_EQ(sched.per_round()[0].value(), 6.0);
  EXPECT_EQ(sched.per_round()[1].value(), 1.0);
  EXPECT_EQ(sched.all_rounds_total().value(), 7.0);
}

// ------------------------------------------------- O(K) Floyd sampler

TEST(ScalableUniformSelection, DrawsKDistinctInRange) {
  ScalableUniformSelection policy(Rng(7));
  for (std::size_t round = 0; round < 50; ++round) {
    const auto ids = policy.select(1000, 25, round);
    ASSERT_EQ(ids.size(), 25u);
    std::set<ClientId> distinct(ids.begin(), ids.end());
    EXPECT_EQ(distinct.size(), ids.size());
    for (const auto id : ids) EXPECT_LT(id, 1000u);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  }
}

TEST(ScalableUniformSelection, KEqualsNSelectsEveryone) {
  ScalableUniformSelection policy(Rng(3));
  const auto ids = policy.select(12, 12, 0);
  ASSERT_EQ(ids.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(ids[i], i);
  // k > n clamps like the other policies.
  EXPECT_EQ(policy.select(5, 9, 1).size(), 5u);
}

TEST(ScalableUniformSelection, SameSeedSameSelections) {
  ScalableUniformSelection a(Rng(99));
  ScalableUniformSelection b(Rng(99));
  for (std::size_t round = 0; round < 10; ++round) {
    EXPECT_EQ(a.select(500, 16, round), b.select(500, 16, round));
  }
}

TEST(ScalableUniformSelection, CoversTheWholeRangeEventually) {
  // Weak uniformity check: over many rounds every decile of the id space
  // gets selected — Floyd's insertion rule must not starve low ids.
  ScalableUniformSelection policy(Rng(13));
  std::vector<std::size_t> decile_hits(10, 0);
  for (std::size_t round = 0; round < 200; ++round) {
    for (const auto id : policy.select(1000, 10, round)) {
      ++decile_hits[id / 100];
    }
  }
  for (std::size_t d = 0; d < 10; ++d) {
    EXPECT_GT(decile_hits[d], 100u) << "decile " << d;
  }
}

}  // namespace
}  // namespace eefei::fl
