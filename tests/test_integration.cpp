// End-to-end pipeline test: the full EE-FEI methodology on a small system.
//
//   measure step-(3) timings on the simulated hardware
//     → calibrate (c0, c1) like the paper's §VI-B
//     → run FL at a few (K, E) points, record T-to-target
//     → calibrate (A0, A1, A2)
//     → ACS plan
//     → confirm the planned operating point beats the naive baseline in
//       *simulated measured* energy, not just under the bound.
#include <gtest/gtest.h>

#include <cmath>

#include "core/planner.h"
#include "energy/calibration.h"
#include "sim/fei_system.h"

namespace eefei {
namespace {

sim::FeiSystemConfig pipeline_config() {
  auto cfg = sim::prototype_config();
  cfg.num_servers = 8;
  cfg.samples_per_server = 150;
  cfg.test_samples = 400;
  cfg.data.image_side = 12;
  cfg.model.input_dim = 144;
  cfg.sgd.learning_rate = 0.1;  // small images need the larger step size
  cfg.sgd.decay = 0.995;        // keep the long E=1 baseline runs moving
  cfg.fl.threads = 4;
  cfg.seed = 17;
  return cfg;
}

// Runs the system to an accuracy target with given (K, E); returns
// (rounds, measured energy) or nullopt if the target was missed.
struct PointResult {
  std::size_t rounds;
  double energy_j;
  double final_loss;
};

std::optional<PointResult> run_point(std::size_t k, std::size_t e,
                                     double target_acc,
                                     std::size_t max_rounds = 150) {
  auto cfg = pipeline_config();
  cfg.fl.clients_per_round = k;
  cfg.fl.local_epochs = e;
  cfg.fl.max_rounds = max_rounds;
  cfg.fl.target_accuracy = target_acc;
  sim::FeiSystem system(cfg);
  auto r = system.run();
  if (!r.ok() || !r->training.reached_target) return std::nullopt;
  return PointResult{r->training.rounds_run, r->measured_energy().value(),
                     r->training.record.last().global_loss};
}

TEST(Pipeline, TimingCalibrationFromSimulatedHardware) {
  // "Measure" step-(3) durations through the simulator's timing model plus
  // jitter, then fit — the §VI-B experiment end to end.
  const energy::TrainingTimeModel truth;
  Rng rng(3);
  std::vector<energy::TimingObservation> obs;
  for (const std::size_t e : {10u, 20u, 40u}) {
    for (const std::size_t n : {100u, 500u, 1000u, 2000u}) {
      const double noisy =
          truth.duration(e, n).value() * (1.0 + rng.normal(0.0, 0.01));
      obs.push_back({e, n, Seconds{noisy}});
    }
  }
  const auto fit = energy::fit_training_time(obs, Watts{5.553});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->energy.c0, 7.79e-5, 4e-6);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(Pipeline, ConvergenceCalibrationFromTrainingRuns) {
  // Train at a few (K, E) points, read off T-to-target, fit the bound.
  const double target = 0.72;
  std::vector<energy::ConvergenceObservation> obs;
  for (const auto& [k, e] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 5}, {2, 20}, {4, 10}, {8, 5}, {8, 40}, {4, 40}}) {
    const auto point = run_point(k, e, target, 200);
    if (!point.has_value()) continue;
    // Gap proxy: final loss minus an optimistic f* estimate.
    obs.push_back({k, e, point->rounds,
                   std::max(1e-3, point->final_loss - 0.30)});
  }
  ASSERT_GE(obs.size(), 3u) << "too few training runs reached the target";
  const auto fit = energy::fit_convergence_constants(obs);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->constants.a0, 0.0);
  EXPECT_GT(fit->constants.a1, 0.0);
  EXPECT_GT(fit->constants.a2, 0.0);
}

TEST(Pipeline, PlannedPointBeatsNaiveBaselineInSimulatedEnergy) {
  // The headline claim, verified against the *simulator's* ledger (which
  // includes overheads the bound ignores): EE-FEI's (K*, E*) trains to the
  // target with less measured energy than K=1, E=1.
  const double target = 0.75;

  core::PlannerInputs inputs;
  inputs.num_servers = 8;
  inputs.samples_per_server = 150;
  // Energy model of the small system.
  auto cfg = pipeline_config();
  sim::FeiSystem probe(cfg);
  inputs.energy = probe.energy_model();
  const auto plan = core::EeFeiPlanner(inputs).plan();
  ASSERT_TRUE(plan.ok());

  const auto planned = run_point(plan->k, plan->e, target, 400);
  const auto naive = run_point(1, 1, target, 900);
  ASSERT_TRUE(planned.has_value()) << "planned point missed the target";
  ASSERT_TRUE(naive.has_value()) << "baseline missed the target";
  EXPECT_LT(planned->energy_j, naive->energy_j)
      << "EE-FEI plan (K=" << plan->k << ", E=" << plan->e
      << ") must beat the naive baseline";
  // The shape of the paper's result: substantial (not marginal) savings.
  EXPECT_LT(planned->energy_j, naive->energy_j * 0.8);
}

TEST(Pipeline, FasterAccuracyWithMoreServers) {
  // Fig. 4(b)'s qualitative claim: at fixed E, larger K reaches the target
  // in no more rounds.
  const double target = 0.70;
  const auto k2 = run_point(2, 10, target, 300);
  const auto k8 = run_point(8, 10, target, 300);
  ASSERT_TRUE(k2.has_value());
  ASSERT_TRUE(k8.has_value());
  EXPECT_LE(k8->rounds, k2->rounds + 2);
}

TEST(Pipeline, EpochsTradeRoundsForComputation) {
  // Fig. 4(d)'s qualitative claim: raising E cuts the required T.
  const double target = 0.70;
  const auto e5 = run_point(4, 5, target, 400);
  const auto e40 = run_point(4, 40, target, 400);
  ASSERT_TRUE(e5.has_value());
  ASSERT_TRUE(e40.has_value());
  EXPECT_LT(e40->rounds, e5->rounds);
}

}  // namespace
}  // namespace eefei
