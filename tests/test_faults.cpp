// Fault-tolerance layer: link fault planning, the server crash process,
// ledger reclassification, and the fault-aware FEI round simulation —
// including the guarantee that with every fault knob at its default the
// system output is byte-identical to the fault-free path.
#include <gtest/gtest.h>

#include <cstdint>

#include "energy/ledger.h"
#include "net/fault.h"
#include "obs/telemetry.h"
#include "sim/fault_process.h"
#include "sim/fei_system.h"

namespace eefei {
namespace {

// ---------------------------------------------------------------- net::fault

TEST(PlanFaultyTransfer, CleanLinkDeliversFirstTry) {
  Rng rng(1);
  net::LinkFaultConfig cfg;  // loss 0, no outages
  const auto out =
      net::plan_faulty_transfer(rng, cfg, Seconds{2.0}, Seconds{0.5});
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.retries(), 0u);
  EXPECT_DOUBLE_EQ(out.finish.value(), 2.5);
  EXPECT_DOUBLE_EQ(out.air_time.value(), 0.5);
  EXPECT_DOUBLE_EQ(out.wasted_air_time.value(), 0.0);
  EXPECT_DOUBLE_EQ(out.backoff_time.value(), 0.0);
}

TEST(PlanFaultyTransfer, OutageForcesRetriesPastTheWindow) {
  Rng rng(1);
  net::LinkFaultConfig cfg;
  cfg.outages = {{Seconds{0.0}, Seconds{0.5}}};
  cfg.backoff_base = Seconds::from_millis(10.0);
  cfg.backoff_factor = 2.0;
  cfg.max_attempts = 10;
  const auto out =
      net::plan_faulty_transfer(rng, cfg, Seconds{0.0}, Seconds{0.1});
  EXPECT_TRUE(out.delivered);
  EXPECT_GT(out.attempts, 1u);
  // The successful attempt starts only after the outage window closes.
  EXPECT_GE((out.finish - Seconds{0.1}).value(), 0.5);
  EXPECT_DOUBLE_EQ(out.wasted_air_time.value(),
                   0.1 * static_cast<double>(out.attempts - 1));
  EXPECT_DOUBLE_EQ(out.air_time.value(),
                   0.1 * static_cast<double>(out.attempts));
  EXPECT_GT(out.backoff_time.value(), 0.0);
}

TEST(PlanFaultyTransfer, AttemptCapGivesUp) {
  Rng rng(1);
  net::LinkFaultConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_attempts = 3;
  cfg.backoff_base = Seconds{0.01};
  cfg.backoff_factor = 2.0;
  const auto out =
      net::plan_faulty_transfer(rng, cfg, Seconds{0.0}, Seconds{0.1});
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_DOUBLE_EQ(out.air_time.value(), 0.3);
  EXPECT_DOUBLE_EQ(out.wasted_air_time.value(), 0.3);
  // Backoff after attempts 1 and 2 only — no trailing gap after giving up.
  EXPECT_DOUBLE_EQ(out.backoff_time.value(), 0.01 + 0.02);
  EXPECT_DOUBLE_EQ(out.finish.value(), 0.3 + 0.03);
}

TEST(PlanFaultyTransfer, BackoffGrowsExponentially) {
  // With certain loss and 4 attempts, the idle time is b + 2b + 4b.
  Rng rng(9);
  net::LinkFaultConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_attempts = 4;
  cfg.backoff_base = Seconds{0.5};
  cfg.backoff_factor = 2.0;
  const auto out =
      net::plan_faulty_transfer(rng, cfg, Seconds{0.0}, Seconds{1.0});
  EXPECT_DOUBLE_EQ(out.backoff_time.value(), 0.5 + 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(out.finish.value(), 4.0 + 3.5);
}

TEST(PlanFaultyTransfer, RngStreamAdvancesOncePerAttempt) {
  // Two configs that fail the same number of attempts for different
  // reasons (loss vs. outage) must leave the rng in the same state.
  net::LinkFaultConfig loss_cfg;
  loss_cfg.loss_probability = 1.0;
  loss_cfg.max_attempts = 3;
  net::LinkFaultConfig outage_cfg;
  outage_cfg.outages = {{Seconds{0.0}, Seconds{100.0}}};
  outage_cfg.max_attempts = 3;

  Rng a(42), b(42);
  (void)net::plan_faulty_transfer(a, loss_cfg, Seconds{0.0}, Seconds{0.1});
  (void)net::plan_faulty_transfer(b, outage_cfg, Seconds{0.0}, Seconds{0.1});
  EXPECT_EQ(a.next(), b.next());
}

TEST(PlanFaultyTransfer, OutageOverlapIsHalfOpenOnBothEnds) {
  // An attempt occupying [start, start + duration) and a window covering
  // [w.start, w.end()) overlap iff begin < w.end() && w.start < end.
  // All instants are dyadic so start + duration is exact — the boundary
  // comparisons below are about interval semantics, not float rounding.
  Rng rng(1);
  net::LinkFaultConfig cfg;
  cfg.outages = {{Seconds{0.125}, Seconds{0.25}}};  // window [0.125, 0.375)

  // Attempt [0.0, 0.125): touches the window's start instant only — the
  // half-open semantics make that a miss, so delivery is first-try.
  const auto before =
      net::plan_faulty_transfer(rng, cfg, Seconds{0.0}, Seconds{0.125});
  EXPECT_TRUE(before.delivered);
  EXPECT_EQ(before.attempts, 1u);

  // Attempt [0.375, 0.5): starts exactly at the window's end — also a miss.
  const auto after =
      net::plan_faulty_transfer(rng, cfg, Seconds{0.375}, Seconds{0.125});
  EXPECT_TRUE(after.delivered);
  EXPECT_EQ(after.attempts, 1u);

  // Attempt [0.25, 0.375): overlaps the window's tail, so the first
  // attempt fails and the transfer retries.
  const auto inside =
      net::plan_faulty_transfer(rng, cfg, Seconds{0.25}, Seconds{0.125});
  EXPECT_GT(inside.attempts, 1u);
}

TEST(LinkFaultConfig, ValidateAcceptsDefaultsAndBoundaries) {
  net::LinkFaultConfig cfg;
  EXPECT_TRUE(cfg.validate().ok());
  cfg.loss_probability = 1.0;
  cfg.backoff_factor = 1.0;  // constant backoff is legal
  cfg.backoff_base = Seconds{0.0};
  cfg.max_attempts = 1;
  cfg.outages = {{Seconds{0.0}, Seconds{0.001}}};
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(LinkFaultConfig, ValidateRejectsDegenerateKnobs) {
  net::LinkFaultConfig cfg;
  cfg.loss_probability = -0.01;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.loss_probability = 1.01;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.max_attempts = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.backoff_base = Seconds{-0.01};
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.backoff_factor = 0.5;  // the planner would clamp it; validate rejects
  EXPECT_FALSE(cfg.validate().ok());
}

TEST(LinkFaultConfig, ValidateRejectsZeroLengthAndNegativeOutages) {
  // A zero-length window never overlaps any attempt under the half-open
  // semantics — it silently does nothing, so it is rejected as a likely
  // misconfiguration rather than accepted.
  net::LinkFaultConfig cfg;
  cfg.outages = {{Seconds{1.0}, Seconds{0.0}}};
  EXPECT_FALSE(cfg.validate().ok());
  cfg.outages = {{Seconds{-0.5}, Seconds{1.0}}};
  EXPECT_FALSE(cfg.validate().ok());
  cfg.outages = {{Seconds{1.0}, Seconds{-1.0}}};
  EXPECT_FALSE(cfg.validate().ok());
}

// ---------------------------------------------------------- sim::CrashProcess

TEST(CrashProcess, DisabledNeverCrashes) {
  sim::CrashProcessConfig cfg;  // mtbf 0 = off
  sim::CrashProcess proc(4, cfg);
  EXPECT_FALSE(proc.enabled());
  EXPECT_FALSE(proc.is_down(0, Seconds{1e6}));
  EXPECT_FALSE(proc.next_crash_in(2, Seconds{0.0}, Seconds{1e6}).has_value());
  EXPECT_EQ(proc.crashes_before(Seconds{1e6}), 0u);
}

TEST(CrashProcess, DeterministicPerSeed) {
  sim::CrashProcessConfig cfg;
  cfg.mtbf = Seconds{5.0};
  cfg.mttr = Seconds{1.0};
  cfg.seed = 321;
  sim::CrashProcess a(3, cfg), b(3, cfg);
  for (std::size_t s = 0; s < 3; ++s) {
    for (int i = 0; i < 200; ++i) {
      const Seconds at{0.25 * i};
      EXPECT_EQ(a.is_down(s, at), b.is_down(s, at)) << s << " @ " << i;
    }
  }
}

TEST(CrashProcess, CrashesOccurAndServerIsDownDuringRepair) {
  sim::CrashProcessConfig cfg;
  cfg.mtbf = Seconds{2.0};
  cfg.mttr = Seconds{1.0};
  sim::CrashProcess proc(1, cfg);
  const auto crash = proc.next_crash_in(0, Seconds{0.0}, Seconds{1000.0});
  ASSERT_TRUE(crash.has_value());
  EXPECT_TRUE(proc.is_down(0, *crash));
  EXPECT_FALSE(proc.is_down(0, *crash - Seconds{1e-6}));
  EXPECT_GT(proc.crashes_before(Seconds{1000.0}), 0u);
}

TEST(CrashProcess, ServersFailIndependently) {
  sim::CrashProcessConfig cfg;
  cfg.mtbf = Seconds{3.0};
  cfg.mttr = Seconds{1.0};
  sim::CrashProcess proc(2, cfg);
  const auto c0 = proc.next_crash_in(0, Seconds{0.0}, Seconds{1000.0});
  const auto c1 = proc.next_crash_in(1, Seconds{0.0}, Seconds{1000.0});
  ASSERT_TRUE(c0.has_value());
  ASSERT_TRUE(c1.has_value());
  EXPECT_NE(c0->value(), c1->value());
}

// ------------------------------------------------------- ledger reclassify

TEST(EnergyLedger, ReclassifyMovesEnergyAndConservesTotal) {
  energy::EnergyLedger ledger(2);
  ledger.charge(1, energy::EnergyCategory::kDownload, Joules{10.0});
  ledger.reclassify(1, energy::EnergyCategory::kDownload,
                    energy::EnergyCategory::kAborted, Joules{4.0});
  EXPECT_DOUBLE_EQ(
      ledger.entry(1, energy::EnergyCategory::kDownload).value(), 6.0);
  EXPECT_DOUBLE_EQ(
      ledger.entry(1, energy::EnergyCategory::kAborted).value(), 4.0);
  EXPECT_DOUBLE_EQ(ledger.total().value(), 10.0);
}

TEST(EnergyLedger, ReclassifyClampsToSourceBalance) {
  energy::EnergyLedger ledger(1);
  ledger.charge(0, energy::EnergyCategory::kTraining, Joules{3.0});
  ledger.reclassify(0, energy::EnergyCategory::kTraining,
                    energy::EnergyCategory::kAborted, Joules{100.0});
  EXPECT_DOUBLE_EQ(
      ledger.entry(0, energy::EnergyCategory::kTraining).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      ledger.entry(0, energy::EnergyCategory::kAborted).value(), 3.0);
}

// ---------------------------------------------------- fault-aware FeiSystem

sim::FeiSystemConfig small_config() {
  sim::FeiSystemConfig cfg = sim::prototype_config();
  cfg.num_servers = 6;
  cfg.samples_per_server = 100;
  cfg.test_samples = 300;
  cfg.data.image_side = 12;
  cfg.model.input_dim = 144;
  cfg.sgd.learning_rate = 0.1;
  cfg.fl.clients_per_round = 3;
  cfg.fl.local_epochs = 5;
  cfg.fl.max_rounds = 8;
  cfg.fl.threads = 4;
  cfg.seed = 5;
  return cfg;
}

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// Golden values captured from the pre-fault-layer build of this exact
// configuration.  With every fault knob at its default, the refactored
// system must reproduce them bit for bit: same parameter bytes, same
// metrics, same energy, same makespan.
TEST(FaultDefaults, ByteIdenticalToFaultFreeSeed) {
  sim::FeiSystem system(small_config());
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;

  const auto& params = r->training.final_params;
  EXPECT_EQ(fnv1a(params.data(), params.size() * sizeof(double)),
            0x7df0d05514f8f32dULL);
  EXPECT_EQ(r->training.record.last().global_loss, 0x1.e7d784c082ebp+0);
  EXPECT_EQ(r->training.record.last().test_accuracy, 0x1.fc962fc962fc9p-2);
  EXPECT_EQ(r->ledger.total().value(), 0x1.ad44a7413f57ap+2);
  EXPECT_EQ(r->wall_clock.value(), 0x1.83162202e1b3fp-1);

  // And the fault telemetry reads zero.
  EXPECT_EQ(r->total_retries, 0u);
  EXPECT_EQ(r->total_aborted_updates, 0u);
  EXPECT_EQ(r->total_straggler_drops, 0u);
  EXPECT_EQ(r->total_crashed_servers, 0u);
  EXPECT_DOUBLE_EQ(
      r->ledger.category_total(energy::EnergyCategory::kRetry).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      r->ledger.category_total(energy::EnergyCategory::kAborted).value(),
      0.0);
}

// The telemetry layer's non-perturbation guarantee: recording spans and
// metrics must not touch a clock, an rng stream or any aggregation order,
// so the traced run reproduces the exact same golden bytes as the
// untraced one above.
TEST(FaultDefaults, ByteIdenticalWithTelemetryEnabled) {
  obs::Telemetry telemetry;
  const obs::TelemetryScope scope(telemetry);
  sim::FeiSystem system(small_config());
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;

  const auto& params = r->training.final_params;
  EXPECT_EQ(fnv1a(params.data(), params.size() * sizeof(double)),
            0x7df0d05514f8f32dULL);
  EXPECT_EQ(r->training.record.last().global_loss, 0x1.e7d784c082ebp+0);
  EXPECT_EQ(r->training.record.last().test_accuracy, 0x1.fc962fc962fc9p-2);
  EXPECT_EQ(r->ledger.total().value(), 0x1.ad44a7413f57ap+2);
  EXPECT_EQ(r->wall_clock.value(), 0x1.83162202e1b3fp-1);

  // The run really was recorded, not silently skipped.
  EXPECT_FALSE(telemetry.tracer.empty());
  const auto snapshot = telemetry.metrics.snapshot();
  EXPECT_EQ(snapshot.counter_value("round.count"), 8.0);
}

TEST(FaultRuns, DeterministicPerSeed) {
  auto cfg = small_config();
  cfg.net.link_faults.loss_probability = 0.2;
  cfg.fl.overselect = 1;
  auto run = [&] {
    sim::FeiSystem system(cfg);
    auto r = system.run();
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.training.final_params, b.training.final_params);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_aborted_updates, b.total_aborted_updates);
  EXPECT_DOUBLE_EQ(a.ledger.total().value(), b.ledger.total().value());
  EXPECT_DOUBLE_EQ(a.wall_clock.value(), b.wall_clock.value());
}

TEST(FaultRuns, LinkLossChargesRetryEnergyAndStillTrains) {
  auto cfg = small_config();
  cfg.net.link_faults.loss_probability = 0.25;
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;

  EXPECT_GT(r->total_retries, 0u);
  EXPECT_GT(
      r->ledger.category_total(energy::EnergyCategory::kRetry).value(), 0.0);
  // Retransmissions stretch the makespan past the fault-free one.
  EXPECT_GT(r->wall_clock.value(), 0x1.83162202e1b3fp-1);
  // Training still makes progress despite the lossy links.
  EXPECT_LT(r->training.record.last().global_loss,
            r->training.record.round(0).global_loss);
  // Per-round telemetry reaches the record rows.
  std::size_t row_retries = 0;
  for (const auto& row : r->training.record.all()) row_retries += row.retries;
  EXPECT_EQ(row_retries, r->total_retries);
}

TEST(FaultRuns, ExhaustedLinkAbortsTheUpdate) {
  auto cfg = small_config();
  cfg.net.link_faults.loss_probability = 0.55;
  cfg.net.link_faults.max_attempts = 2;
  cfg.fl.overselect = 2;
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_GT(r->total_aborted_updates, 0u);
  EXPECT_GT(
      r->ledger.category_total(energy::EnergyCategory::kAborted).value(),
      0.0);
  // Over-selection keeps the round populated: K' servers were selected.
  EXPECT_EQ(r->training.record.round(0).clients_selected, 5u);
}

TEST(FaultRuns, RoundDeadlineDropsStragglersAndBoundsTheClock) {
  auto cfg = small_config();
  const double deadline = 0.04;
  cfg.round_deadline = Seconds{deadline};
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_GT(r->total_straggler_drops, 0u);
  // Each round ends at its deadline at the latest.
  EXPECT_LE(r->wall_clock.value(),
            deadline * static_cast<double>(r->training.rounds_run) + 1e-9);
}

TEST(FaultRuns, CrashesTakeServersOutAndAbortTheirWork) {
  auto cfg = small_config();
  cfg.crashes.mtbf = Seconds{0.15};
  cfg.crashes.mttr = Seconds{0.05};
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_GT(r->total_crashed_servers, 0u);
  EXPECT_GT(
      r->ledger.category_total(energy::EnergyCategory::kAborted).value(),
      0.0);
}

TEST(FaultRuns, CsmaContentionIsRejectedWithFaults) {
  auto cfg = small_config();
  cfg.lan_contention = sim::FeiSystemConfig::LanContention::kCsma;
  cfg.net.link_faults.loss_probability = 0.1;
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  EXPECT_FALSE(r.ok());
}

TEST(FaultRuns, EvalEveryZeroIsRejected) {
  auto cfg = small_config();
  cfg.fl.eval_every = 0;
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  EXPECT_FALSE(r.ok());
}

// The ISSUE's fault demo: 10% link loss plus a mid-run coordinator crash.
// Segment 1 trains with periodic checkpoint autosave and "crashes" after 12
// rounds; segment 2 resumes from the last autosave and still reaches the
// accuracy target.
TEST(FaultRuns, CheckpointAutosaveSurvivesCrashAndReachesTarget) {
  auto cfg = small_config();
  cfg.net.link_faults.loss_probability = 0.10;
  cfg.fl.overselect = 1;
  cfg.fl.checkpoint_every = 5;
  cfg.fl.max_rounds = 12;

  sim::FeiSystem first(cfg);
  const auto seg1 = first.run();
  ASSERT_TRUE(seg1.ok()) << seg1.error().message;
  ASSERT_TRUE(seg1->last_checkpoint.has_value());
  // 12 rounds with autosave every 5 → the last autosave covers round 10.
  EXPECT_EQ(seg1->last_checkpoint->rounds_completed, 10u);

  auto cfg2 = cfg;
  cfg2.fl.max_rounds = 40;
  cfg2.fl.target_accuracy = 0.5;
  sim::FeiSystem second(cfg2);
  second.resume_from(*seg1->last_checkpoint);
  const auto seg2 = second.run();
  ASSERT_TRUE(seg2.ok()) << seg2.error().message;
  EXPECT_TRUE(seg2->training.reached_target);
  // Round numbering continued from the checkpoint.
  EXPECT_EQ(seg2->training.record.round(0).round, 10u);
}

}  // namespace
}  // namespace eefei
