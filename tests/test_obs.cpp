// Observability layer: metrics registry, span tracer, Chrome-trace /
// metrics / manifest exporters, the global telemetry toggle, and the two
// system-level guarantees — traced runs are deterministic per seed, and the
// metrics mirror of the energy ledger cannot drift from the ledger itself.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "energy/ledger.h"
#include "obs/build_info.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "obs/tracer.h"
#include "sim/async_fei.h"
#include "sim/fei_system.h"

namespace eefei {
namespace {

// ------------------------------------------------------------------ metrics

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  obs::Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) counter.add(0.5);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(counter.value(), 8 * 1000 * 0.5);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  obs::Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
}

TEST(Metrics, HistogramBucketsObservations) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(5.0);    // bucket 1
  h.observe(99.0);   // bucket 2
  h.observe(1e9);    // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 99.0 + 1e9);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, HistogramOverflowIsCountedNotDropped) {
  // Regression: saturating observations used to vanish into the last bucket
  // with no trace; they must land in an explicit overflow bucket, and
  // min/max must expose the actual recorded range.
  obs::Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty histogram reports 0.0
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.observe(0.25);
  h.observe(500.0);   // past the last bound
  h.observe(7000.0);  // further past
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow(), 2u);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(buckets.back(), h.overflow());
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 7000.0);
  // The export carries all three, so saturation is visible downstream.
  obs::MetricsRegistry registry;
  registry.histogram("sat", std::vector<double>{1.0, 10.0}).observe(500.0);
  const std::string json = obs::metrics_json(registry.snapshot());
  EXPECT_NE(json.find("\"overflow\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"min\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"max\": 500"), std::string::npos);
}

TEST(Metrics, ExponentialBoundsGrowGeometrically) {
  const auto bounds = obs::Histogram::exponential_bounds(1e3, 4.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e3);
  EXPECT_DOUBLE_EQ(bounds[4], 1e3 * 256.0);
}

TEST(Metrics, RegistryReturnsStableAddressesAndSortedSnapshot) {
  obs::MetricsRegistry registry;
  obs::Counter& c1 = registry.counter("zeta");
  obs::Counter& c2 = registry.counter("alpha");
  EXPECT_EQ(&c1, &registry.counter("zeta"));
  c1.add(2.0);
  c2.increment();
  registry.gauge("depth").set(7.0);
  (void)registry.histogram("lat", std::vector<double>{1.0, 2.0});

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");  // name-sorted
  EXPECT_EQ(snapshot.counters[1].first, "zeta");
  EXPECT_DOUBLE_EQ(snapshot.counter_value("zeta"), 2.0);
  EXPECT_DOUBLE_EQ(snapshot.counter_value("missing"), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.gauge_value("depth"), 7.0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "lat");
}

TEST(Metrics, RegistrySketchFindOrCreateKeepsStableAddresses) {
  obs::MetricsRegistry registry;
  obs::QuantileSketch& sk = registry.sketch("fleet.round.seconds");
  EXPECT_EQ(&sk, &registry.sketch("fleet.round.seconds"));
  // Accuracy is only consulted on first registration.
  EXPECT_EQ(&sk, &registry.sketch("fleet.round.seconds", 0.1));
  EXPECT_DOUBLE_EQ(sk.relative_accuracy(),
                   obs::QuantileSketch::kDefaultRelativeAccuracy);
  sk.record(0.5);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.sketches.size(), 1u);
  const auto* found = snap.sketch("fleet.round.seconds");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 1u);
  EXPECT_EQ(snap.sketch("missing"), nullptr);
}

TEST(Metrics, SketchSnapshotWhileRecordingIsSafe) {
  // TSan target: snapshot() must be data-race-free against concurrent
  // record() calls, and every snapshot must be internally consistent
  // (bucket totals == count - zero_count even mid-recording).
  obs::QuantileSketch sketch;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      std::uint64_t i = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        sketch.record(static_cast<double>(i % 1000) * 0.01);
        ++i;
      }
    });
  }
  std::uint64_t last_count = 0;
  for (int s = 0; s < 50; ++s) {
    const auto snap = sketch.snapshot();
    // Per-shard counters only grow, and same-variable relaxed loads respect
    // modification order, so successive snapshots are monotone.
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  const auto final_snap = sketch.snapshot();
  std::uint64_t in_buckets = final_snap.zero_count;
  for (const auto b : final_snap.buckets) in_buckets += b;
  EXPECT_EQ(in_buckets, final_snap.count);
}

TEST(Metrics, EmptyRegistryExportsValidDocument) {
  obs::MetricsRegistry registry;
  const std::string json = obs::metrics_json(registry.snapshot());
  EXPECT_NE(json.find("\"kind\": \"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\": ["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": ["), std::string::npos);
  EXPECT_NE(json.find("\"sketches\": ["), std::string::npos);
}

// ------------------------------------------------------------------- tracer

TEST(Tracer, RecordsSimSpansWithMicrosecondTimestamps) {
  obs::Tracer tracer;
  tracer.sim_span("training", "sim.phase", obs::Tracer::server_pid(2),
                  Seconds{1.5}, Seconds{0.25}, {{"round", 3.0}});
  tracer.sim_instant("server.crash", "sim.fault", obs::Tracer::server_pid(2),
                     Seconds{1.75});
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[0].clock, obs::Clock::kSim);
  EXPECT_EQ(events[0].pid, 3);  // server 2 → pid 3
  EXPECT_DOUBLE_EQ(events[0].ts_us, 1.5e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 0.25e6);
  ASSERT_EQ(events[0].n_args, 1u);
  EXPECT_STREQ(events[0].args[0].key, "round");
  EXPECT_EQ(events[1].ph, 'i');
  EXPECT_DOUBLE_EQ(events[1].ts_us, 1.75e6);
}

TEST(Tracer, WallSpanIsInertOnNullTracer) {
  // The disabled-telemetry idiom: WallSpan on obs::tracer() == nullptr must
  // be a no-op, not a crash.
  obs::Tracer::WallSpan span(nullptr, "noop", "test");
}

TEST(Tracer, WallSpanRecordsOnDestruction) {
  obs::Tracer tracer;
  {
    obs::Tracer::WallSpan span(&tracer, "work", "host", {{"n", 4.0}});
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].clock, obs::Clock::kWall);
  EXPECT_EQ(events[0].pid, obs::Tracer::kHostPid);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(Tracer, CollectsEventsFromMultipleThreads) {
  obs::Tracer tracer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 50; ++i) {
        tracer.wall_instant("tick", "test");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.events().size(), 200u);
}

TEST(Tracer, TrackNamesAreIdempotentAndPidSorted) {
  obs::Tracer tracer;
  tracer.set_track_name(5, "edge_server_4");
  tracer.set_track_name(0, "coordinator");
  tracer.set_track_name(5, "edge_server_4");  // duplicate registration
  const auto names = tracer.track_names();
  // The host wall track is pre-registered at construction.
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0].first, 0);
  EXPECT_EQ(names[0].second, "coordinator");
  EXPECT_EQ(names[1].first, 5);
  EXPECT_EQ(names[2].first, obs::Tracer::kHostPid);
  EXPECT_EQ(names[2].second, "host");
}

// ----------------------------------------------------------- telemetry gate

TEST(Telemetry, DisabledByDefaultAndScopeRestores) {
  EXPECT_EQ(obs::telemetry(), nullptr);
  obs::Telemetry outer;
  {
    obs::TelemetryScope outer_scope(outer);
    EXPECT_EQ(obs::telemetry(), &outer);
    obs::Telemetry inner;
    {
      obs::TelemetryScope inner_scope(inner);
      EXPECT_EQ(obs::telemetry(), &inner);
    }
    EXPECT_EQ(obs::telemetry(), &outer);
  }
  EXPECT_EQ(obs::telemetry(), nullptr);
  EXPECT_EQ(obs::tracer(), nullptr);
  EXPECT_EQ(obs::metrics(), nullptr);
}

// -------------------------------------------------------------------- json

TEST(ObsJson, QuoteEscapesControlCharacters) {
  EXPECT_EQ(obs::json_quote("plain"), "\"plain\"");
  EXPECT_EQ(obs::json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(obs::json_quote("line\nbreak"), "\"line\\nbreak\"");
}

TEST(ObsJson, NumberHandlesNonFinite) {
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
}

// --------------------------------------------------------------- exporters

TEST(TraceExport, ChromeJsonCarriesSchemaTracksAndEvents) {
  obs::Tracer tracer;
  tracer.set_track_name(obs::Tracer::kCoordinatorPid, "coordinator");
  tracer.set_track_name(obs::Tracer::server_pid(0), "edge_server_0");
  tracer.sim_span("training", "sim.phase", obs::Tracer::server_pid(0),
                  Seconds{0.0}, Seconds{1.0});
  tracer.sim_instant("update.lost", "sim.fault", obs::Tracer::server_pid(0),
                     Seconds{0.5});
  const std::string json = obs::chrome_trace_json(tracer);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"edge_server_0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  // Instants carry the scope marker Perfetto expects.
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
}

TEST(TraceExport, IncludeWallFalseDropsWallEvents) {
  obs::Tracer tracer;
  tracer.set_track_name(obs::Tracer::kHostPid, "host");
  tracer.sim_span("round", "sim.round", obs::Tracer::kCoordinatorPid,
                  Seconds{0.0}, Seconds{1.0});
  tracer.wall_instant("tick", "host");
  obs::TraceExportOptions options;
  options.include_wall = false;
  const std::string json = obs::chrome_trace_json(tracer, options);
  EXPECT_NE(json.find("\"round\""), std::string::npos);
  EXPECT_EQ(json.find("\"tick\""), std::string::npos);
  EXPECT_EQ(json.find("\"host\""), std::string::npos);
}

TEST(TraceExport, MetricsJsonRoundTripsSnapshotValues) {
  obs::MetricsRegistry registry;
  registry.counter("energy.joules.training").add(12.5);
  registry.gauge("pool.queue_depth").set(3.0);
  registry.histogram("gemm.ns", std::vector<double>{10.0, 100.0})
      .observe(42.0);
  const std::string json = obs::metrics_json(registry.snapshot());
  EXPECT_NE(json.find("\"kind\": \"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"energy.joules.training\""), std::string::npos);
  EXPECT_NE(json.find("12.5"), std::string::npos);
  EXPECT_NE(json.find("\"pool.queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"gemm.ns\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [0, 1, 0]"), std::string::npos);
}

TEST(Manifest, JsonCarriesProvenanceAndTotals) {
  obs::RunManifest manifest;
  manifest.tool = "test_tool";
  manifest.seed = 42;
  manifest.set("servers", "6");
  obs::MetricsRegistry registry;
  registry.counter("round.count").add(8.0);
  manifest.add_metric_totals(registry.snapshot());
  manifest.artifacts = {"out.trace.json"};
  const std::string json = obs::manifest_json(manifest);
  EXPECT_NE(json.find("\"kind\": \"manifest\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"test_tool\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"servers\": \"6\""), std::string::npos);
  EXPECT_NE(json.find("\"round.count\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"out.trace.json\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"build_flags\""), std::string::npos);
}

TEST(BuildInfo, NeverReturnsEmpty) {
  EXPECT_FALSE(std::string(obs::git_sha()).empty());
  EXPECT_FALSE(std::string(obs::build_type()).empty());
  EXPECT_FALSE(std::string(obs::build_flags()).empty());
}

// --------------------------------------------------- system-level contracts

sim::FeiSystemConfig faulty_config() {
  sim::FeiSystemConfig cfg = sim::prototype_config();
  cfg.num_servers = 6;
  cfg.samples_per_server = 100;
  cfg.test_samples = 300;
  cfg.data.image_side = 12;
  cfg.model.input_dim = 144;
  cfg.sgd.learning_rate = 0.1;
  cfg.fl.clients_per_round = 3;
  cfg.fl.local_epochs = 5;
  cfg.fl.max_rounds = 6;
  cfg.fl.threads = 4;
  cfg.seed = 5;
  cfg.net.link_faults.loss_probability = 0.25;
  cfg.fl.overselect = 1;
  return cfg;
}

TEST(TracedRuns, SimTraceIsDeterministicPerSeed) {
  // Two traced same-seed runs must export byte-identical trace JSON once
  // wall-clock events are stripped (sim timestamps are simulation state;
  // wall timestamps are host noise).
  auto traced_run = [] {
    obs::Telemetry telemetry;
    const obs::TelemetryScope scope(telemetry);
    sim::FeiSystem system(faulty_config());
    const auto r = system.run();
    EXPECT_TRUE(r.ok());
    obs::TraceExportOptions options;
    options.include_wall = false;
    return obs::chrome_trace_json(telemetry.tracer, options);
  };
  const std::string a = traced_run();
  const std::string b = traced_run();
  EXPECT_EQ(a, b);
  // The trace actually contains the Fig. 3 state machine, faults included.
  for (const char* needle :
       {"\"downloading\"", "\"training\"", "\"uploading\"", "\"waiting\"",
        "\"round\"", "\"edge_server_5\""}) {
    EXPECT_NE(a.find(needle), std::string::npos) << needle;
  }
}

TEST(TracedRuns, TracingDoesNotPerturbTheRun) {
  auto run_params = [](bool traced) {
    obs::Telemetry telemetry;
    std::unique_ptr<obs::TelemetryScope> scope;
    if (traced) scope = std::make_unique<obs::TelemetryScope>(telemetry);
    sim::FeiSystem system(faulty_config());
    auto r = system.run();
    EXPECT_TRUE(r.ok());
    return std::move(r).value().training.final_params;
  };
  EXPECT_EQ(run_params(false), run_params(true));
}

TEST(TracedRuns, MetricsMirrorMatchesLedgerAfterFaultyRun) {
  obs::Telemetry telemetry;
  const obs::TelemetryScope scope(telemetry);
  sim::FeiSystem system(faulty_config());
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  ASSERT_GT(r->total_retries, 0u);  // the faulty paths actually fired

  const auto snapshot = telemetry.metrics.snapshot();
  for (std::size_t c = 0; c < energy::kNumEnergyCategories; ++c) {
    const auto cat = static_cast<energy::EnergyCategory>(c);
    EXPECT_NEAR(snapshot.counter_value(std::string("energy.joules.") +
                                       energy::to_string(cat)),
                r->ledger.category_total(cat).value(), 1e-9)
        << energy::to_string(cat);
  }
  EXPECT_DOUBLE_EQ(snapshot.counter_value("link.retries"),
                   static_cast<double>(r->total_retries));
  EXPECT_DOUBLE_EQ(snapshot.counter_value("round.count"), 6.0);
}

TEST(TracedRuns, MetricsMirrorSurvivesAsyncReclassify) {
  // The async stop path re-books in-flight charges as kAborted via
  // reclassify(); the metric mirror must follow the move, not just the
  // original charge.
  sim::AsyncFeiConfig cfg;
  cfg.base = sim::prototype_config();
  cfg.base.num_servers = 6;
  cfg.base.samples_per_server = 100;
  cfg.base.test_samples = 300;
  cfg.base.data.image_side = 12;
  cfg.base.model.input_dim = 144;
  cfg.base.sgd.learning_rate = 0.1;
  cfg.base.fl.clients_per_round = 3;  // 3 concurrent workers
  cfg.base.fl.local_epochs = 5;
  cfg.base.seed = 51;
  cfg.max_updates = 20;
  cfg.eval_every = 10;

  obs::Telemetry telemetry;
  const obs::TelemetryScope scope(telemetry);
  sim::AsyncFeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  ASSERT_GT(r->cancelled_tasks, 0u);  // the reclassify path actually fired

  const auto snapshot = telemetry.metrics.snapshot();
  for (std::size_t c = 0; c < energy::kNumEnergyCategories; ++c) {
    const auto cat = static_cast<energy::EnergyCategory>(c);
    EXPECT_NEAR(snapshot.counter_value(std::string("energy.joules.") +
                                       energy::to_string(cat)),
                r->ledger.category_total(cat).value(), 1e-9)
        << energy::to_string(cat);
  }
  EXPECT_DOUBLE_EQ(snapshot.counter_value("async.cancelled"),
                   static_cast<double>(r->cancelled_tasks));
  EXPECT_DOUBLE_EQ(snapshot.counter_value("async.updates"),
                   static_cast<double>(r->updates_applied));
}

}  // namespace
}  // namespace eefei
