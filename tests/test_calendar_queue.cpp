// CalendarQueue vs the binary-heap reference (TypedEventQueue): the two
// schedulers must produce bit-identical pop sequences — same payload
// order, same timestamps, same clock/pending/high-water telemetry — under
// adversarial workloads: equal-time ties, past-time clamps, mid-drain
// re-entrant schedules, wide and degenerate time scales (window rebuild
// pressure), max_events stop/resume, clear()/reset() reuse.  This is the
// ordering-equivalence pin the fleet engine's determinism contract rests
// on when the default queue is the calendar.
#include "sim/calendar_queue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "sim/fleet_event.h"
#include "sim/typed_event_queue.h"

namespace eefei::sim {
namespace {

struct Pop {
  std::uint32_t payload = 0;
  double at = 0.0;
  bool operator==(const Pop&) const = default;
};

// Drives one queue through a deterministic adversarial script and returns
// its full pop log.  All decisions — schedule times, re-entrant follow-ups,
// stop points — derive from the seed and from the popped events themselves,
// so two order-equivalent queues consume the identical script.
template <class Q>
std::vector<Pop> drive(std::uint64_t seed) {
  Q q;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> wide(0.0, 1e6);
  std::vector<Pop> log;
  std::uint32_t next_id = 0;

  // A palette with deliberate duplicates so equal-time ties are common.
  std::vector<double> palette;
  for (int i = 0; i < 16; ++i) palette.push_back(wide(rng));
  palette.push_back(palette[3]);
  palette.push_back(palette[7]);
  palette.push_back(0.0);

  auto dispatch = [&](const FleetEvent& ev, Seconds at) {
    log.push_back({ev.a, at.value()});
    // Re-entrant follow-ups, derived from the event itself (identical for
    // any order-equivalent queue): bursts of equal-time and near-past
    // schedules from inside the handler, the fleet engine's hot pattern.
    const std::uint64_t h = ev.a * 0x9e3779b97f4a7c15ULL + ev.b;
    if (ev.b > 0) {
      const int fan = 1 + static_cast<int>(h % 3);
      for (int i = 0; i < fan; ++i) {
        const double delta = (h >> (8 + 4 * i)) % 5 == 0
                                 ? 0.0  // same-timestamp tie
                                 : 1e-3 * static_cast<double>((h >> i) % 97);
        FleetEvent next;
        next.a = next_id++;
        next.b = ev.b - 1;
        EXPECT_TRUE(q.schedule_at(at + Seconds{delta}, next));
      }
    }
    if (h % 7 == 0) {
      // Past timestamp from inside a handler: must clamp to now() and fire
      // after everything already popped, identically in both queues.
      FleetEvent past;
      past.a = next_id++;
      past.b = 0;
      EXPECT_TRUE(q.schedule_at(Seconds{at.value() / 2.0}, past));
    }
  };

  for (int round = 0; round < 6; ++round) {
    // Batch of root schedules: palette times (ties), wide times (window
    // span), and a degenerate all-equal cluster every other round.
    for (int i = 0; i < 40; ++i) {
      FleetEvent ev;
      ev.a = next_id++;
      ev.b = static_cast<std::uint32_t>(rng() % 3);
      const double t = (i % 4 == 0) ? palette[rng() % palette.size()]
                                    : wide(rng);
      EXPECT_TRUE(q.schedule_at(Seconds{t}, ev));
    }
    if (round % 2 == 1) {
      const double t = wide(rng);
      for (int i = 0; i < 10; ++i) {
        FleetEvent ev;
        ev.a = next_id++;
        ev.b = 0;
        EXPECT_TRUE(q.schedule_at(Seconds{t}, ev));
      }
    }
    // Non-finite schedules must be rejected without perturbing state.
    FleetEvent junk;
    junk.a = 0xdeadbeef;
    EXPECT_FALSE(q.schedule_at(
        Seconds{std::numeric_limits<double>::quiet_NaN()}, junk));
    EXPECT_FALSE(q.schedule_at(
        Seconds{std::numeric_limits<double>::infinity()}, junk));
    EXPECT_FALSE(q.schedule_at(
        Seconds{-std::numeric_limits<double>::infinity()}, junk));

    // Drain in randomly-sized slices: a stopped run must resume exactly.
    while (!q.empty()) {
      const std::size_t step = 1 + rng() % 37;
      (void)q.run(dispatch, step);
      log.push_back({0xffffffffu, q.now().value()});  // checkpoint marker
      log.push_back({static_cast<std::uint32_t>(q.pending()),
                     static_cast<double>(q.high_water())});
    }
  }
  return log;
}

TEST(CalendarQueue, MatchesBinaryHeapOnAdversarialWorkload) {
  for (std::uint64_t seed : {1ULL, 42ULL, 977ULL, 31337ULL}) {
    const auto heap_log = drive<TypedEventQueue<FleetEvent>>(seed);
    const auto cal_log = drive<CalendarQueue<FleetEvent>>(seed);
    ASSERT_EQ(heap_log.size(), cal_log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap_log.size(); ++i) {
      ASSERT_EQ(heap_log[i], cal_log[i]) << "seed " << seed << " pop " << i;
    }
  }
}

// Times spanning ten orders of magnitude force repeated window rebuilds
// (bucket-count growth, overflow re-spill, the f(at) boundary clamp);
// clustered times force the all-equal degenerate window.  Order must still
// match the heap exactly.
TEST(CalendarQueue, WindowRebuildPressurePreservesOrder) {
  TypedEventQueue<FleetEvent> heap;
  CalendarQueue<FleetEvent> cal;
  std::mt19937_64 rng(7);
  std::uint32_t id = 0;
  for (int burst = 0; burst < 8; ++burst) {
    const double scale = std::pow(10.0, static_cast<double>(burst) - 3.0);
    for (int i = 0; i < 200; ++i) {
      FleetEvent ev;
      ev.a = id++;
      const double t = (i % 5 == 0)
                           ? scale  // heavy cluster at the scale point
                           : scale * (1.0 + static_cast<double>(rng() % 1000) /
                                                1000.0);
      ASSERT_TRUE(heap.schedule_at(Seconds{t}, ev));
      ASSERT_TRUE(cal.schedule_at(Seconds{t}, ev));
    }
  }
  std::vector<Pop> a;
  std::vector<Pop> b;
  (void)heap.run([&](const FleetEvent& e, Seconds t) {
    a.push_back({e.a, t.value()});
  });
  (void)cal.run([&](const FleetEvent& e, Seconds t) {
    b.push_back({e.a, t.value()});
  });
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "pop " << i;
  }
  EXPECT_EQ(heap.now().value(), cal.now().value());
  EXPECT_EQ(heap.high_water(), cal.high_water());
}

template <class Q>
std::vector<std::uint32_t> drain_ids(Q& q) {
  std::vector<std::uint32_t> ids;
  (void)q.run([&](const FleetEvent& e, Seconds) { ids.push_back(e.a); });
  return ids;
}

template <class Q>
void expect_fifo_among_equal_times() {
  Q q;
  for (std::uint32_t i = 0; i < 100; ++i) {
    FleetEvent ev;
    ev.a = i;
    ASSERT_TRUE(q.schedule_at(Seconds{1.0}, ev));
  }
  const auto ids = drain_ids(q);
  ASSERT_EQ(ids.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(ids[i], i);
}

TEST(CalendarQueue, FifoAmongEqualTimes) {
  expect_fifo_among_equal_times<CalendarQueue<FleetEvent>>();
}
TEST(FleetEvent, BinaryHeapFifoAmongEqualTimes) {
  expect_fifo_among_equal_times<TypedEventQueue<FleetEvent>>();
}

template <class Q>
void expect_past_schedules_clamp() {
  Q q;
  std::vector<double> fired_at;
  FleetEvent root;
  root.a = 1;
  ASSERT_TRUE(q.schedule_at(Seconds{5.0}, root));
  (void)q.run([&](const FleetEvent& e, Seconds t) {
    fired_at.push_back(t.value());
    if (e.a == 1) {
      FleetEvent past;
      past.a = 2;
      ASSERT_TRUE(q.schedule_at(Seconds{1.0}, past));  // clamps to 5.0
    }
  });
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[1], 5.0);
  EXPECT_EQ(q.now().value(), 5.0);
}

TEST(CalendarQueue, PastSchedulesClampToNow) {
  expect_past_schedules_clamp<CalendarQueue<FleetEvent>>();
}
TEST(FleetEvent, BinaryHeapPastSchedulesClampToNow) {
  expect_past_schedules_clamp<TypedEventQueue<FleetEvent>>();
}

template <class Q>
void expect_max_events_stop_then_resume() {
  Q q;
  std::vector<std::uint32_t> order;
  for (std::uint32_t i = 0; i < 6; ++i) {
    FleetEvent ev;
    ev.a = i;
    ASSERT_TRUE(q.schedule_at(Seconds{static_cast<double>(i)}, ev));
  }
  auto dispatch = [&](const FleetEvent& e, Seconds) { order.push_back(e.a); };
  EXPECT_EQ(q.run(dispatch, 2), 2u);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(q.now().value(), 1.0);
  EXPECT_EQ(q.pending(), 4u);
  EXPECT_EQ(q.run(dispatch, 3), 3u);
  EXPECT_EQ(q.run(dispatch), 1u);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, MaxEventsStopThenResume) {
  expect_max_events_stop_then_resume<CalendarQueue<FleetEvent>>();
}
TEST(FleetEvent, BinaryHeapMaxEventsStopThenResume) {
  expect_max_events_stop_then_resume<TypedEventQueue<FleetEvent>>();
}

// Regression (satellite): schedule_at must reject non-finite timestamps —
// a NaN breaks the (time, seq) comparator's strict weak ordering and the
// bucket arithmetic, silently corrupting the order both queues are sworn
// to.  Nothing may be enqueued and telemetry must not move.
template <class Q>
void expect_rejects_non_finite() {
  Q q;
  FleetEvent ev;
  EXPECT_FALSE(
      q.schedule_at(Seconds{std::numeric_limits<double>::quiet_NaN()}, ev));
  EXPECT_FALSE(
      q.schedule_at(Seconds{std::numeric_limits<double>::infinity()}, ev));
  EXPECT_FALSE(
      q.schedule_at(Seconds{-std::numeric_limits<double>::infinity()}, ev));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.high_water(), 0u);
  EXPECT_EQ(q.run([](const FleetEvent&, Seconds) {}), 0u);
}

TEST(CalendarQueue, RejectsNonFiniteTimestamps) {
  expect_rejects_non_finite<CalendarQueue<FleetEvent>>();
}
TEST(FleetEvent, BinaryHeapRejectsNonFiniteTimestamps) {
  expect_rejects_non_finite<TypedEventQueue<FleetEvent>>();
}

// Regression (satellite): clear()/reset() must re-arm the high-water mark;
// a stale pre-clear depth makes per-phase telemetry windows report ghost
// queue pressure.
template <class Q>
void expect_clear_and_reset_rearm_high_water() {
  Q q;
  for (std::uint32_t i = 0; i < 8; ++i) {
    FleetEvent ev;
    ev.a = i;
    ASSERT_TRUE(q.schedule_at(Seconds{static_cast<double>(i)}, ev));
  }
  EXPECT_EQ(q.high_water(), 8u);
  q.clear();
  EXPECT_EQ(q.high_water(), 0u);
  FleetEvent ev;
  ASSERT_TRUE(q.schedule_at(Seconds{1.0}, ev));
  EXPECT_EQ(q.high_water(), 1u);  // tracks the new window, not the ghost 8
  q.reset();
  EXPECT_EQ(q.high_water(), 0u);
  EXPECT_EQ(q.now().value(), 0.0);
}

TEST(CalendarQueue, ClearAndResetReArmHighWater) {
  expect_clear_and_reset_rearm_high_water<CalendarQueue<FleetEvent>>();
}
TEST(FleetEvent, BinaryHeapClearAndResetReArmHighWater) {
  expect_clear_and_reset_rearm_high_water<TypedEventQueue<FleetEvent>>();
}

// clear() keeps the clock (the reuse semantic shared with the closure
// queue); reset() rewinds it.  Both retain capacity — allocation
// discipline is pinned separately by the counting-allocator binary.
TEST(CalendarQueue, ClearKeepsClockResetRewindsIt) {
  CalendarQueue<FleetEvent> q;
  FleetEvent ev;
  ASSERT_TRUE(q.schedule_at(Seconds{4.0}, ev));
  (void)q.run([](const FleetEvent&, Seconds) {});
  ASSERT_TRUE(q.schedule_at(Seconds{9.0}, ev));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now().value(), 4.0);
  double fired_at = -1.0;
  ASSERT_TRUE(q.schedule_at(Seconds{1.0}, ev));  // past: clamps to 4.0
  (void)q.run([&](const FleetEvent&, Seconds t) { fired_at = t.value(); });
  EXPECT_EQ(fired_at, 4.0);
  q.reset();
  EXPECT_EQ(q.now().value(), 0.0);
  fired_at = -1.0;
  ASSERT_TRUE(q.schedule_at(Seconds{1.0}, ev));
  (void)q.run([&](const FleetEvent&, Seconds t) { fired_at = t.value(); });
  EXPECT_EQ(fired_at, 1.0);  // not clamped: the clock was rewound
}

// Re-entrancy stress on the calendar's active-bucket sorted-insert path:
// handlers fan out schedules at the current timestamp and into the active
// bucket's time range while it is mid-drain, forcing inserts relative to
// the drain cursor and bucket-vector reallocation during dispatch.
TEST(CalendarQueue, HandlerFanOutDuringDrainMatchesHeap) {
  auto fan_log = [](auto&& q) {
    std::vector<Pop> log;
    std::uint32_t next_id = 100;
    FleetEvent root;
    root.a = 0;
    root.b = 4;  // fan depth rides in b
    EXPECT_TRUE(q.schedule_at(Seconds{0.0}, root));
    (void)q.run([&](const FleetEvent& e, Seconds at) {
      log.push_back({e.a, at.value()});
      if (e.b == 0) return;
      for (int i = 0; i < 6; ++i) {
        FleetEvent next;
        next.a = next_id++;
        next.b = e.b - 1;
        // Half land exactly at now() (active-bucket insert at the cursor),
        // half a hair later (insert past the cursor).
        const double d = (i % 2 == 0) ? 0.0 : 1e-6 * (i + 1);
        EXPECT_TRUE(q.schedule_at(at + Seconds{d}, next));
      }
    });
    return log;
  };
  TypedEventQueue<FleetEvent> heap;
  CalendarQueue<FleetEvent> cal;
  const auto a = fan_log(heap);
  const auto b = fan_log(cal);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "pop " << i;
  }
}

}  // namespace
}  // namespace eefei::sim
