// Integration tests of the full FEI system simulation: training, timing,
// energy accounting, and their mutual consistency.
#include "sim/fei_system.h"

#include <gtest/gtest.h>

#include <cmath>

#include "energy/meter.h"

namespace eefei::sim {
namespace {

FeiSystemConfig small_config() {
  FeiSystemConfig cfg = prototype_config();
  cfg.num_servers = 6;
  cfg.samples_per_server = 100;
  cfg.test_samples = 300;
  cfg.data.image_side = 12;
  cfg.model.input_dim = 144;
  cfg.sgd.learning_rate = 0.1;  // small images need the larger step size
  cfg.fl.clients_per_round = 3;
  cfg.fl.local_epochs = 5;
  cfg.fl.max_rounds = 8;
  cfg.fl.threads = 4;
  cfg.seed = 5;
  return cfg;
}

TEST(FeiSystem, RunsAndTrains) {
  FeiSystem system(small_config());
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r->training.rounds_run, 8u);
  EXPECT_LT(r->training.record.last().global_loss,
            r->training.record.round(0).global_loss);
  EXPECT_GT(r->wall_clock.value(), 0.0);
  EXPECT_EQ(r->timelines.size(), 6u);
}

TEST(FeiSystem, LedgerMatchesClosedFormForTrainingAndUpload) {
  auto cfg = small_config();
  cfg.timing_jitter = 0.0;  // deterministic durations
  cfg.net.lan.loss_probability = 0.0;
  FeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok());

  const auto model = system.energy_model();
  // Per-round per-server closed forms × (rounds × K) must equal the ledger.
  const double rounds_times_k = 8.0 * 3.0;
  const double expected_training =
      model.training.energy(cfg.fl.local_epochs, cfg.samples_per_server)
          .value() *
      rounds_times_k;
  const double measured_training =
      r->ledger.category_total(energy::EnergyCategory::kTraining).value();
  EXPECT_NEAR(measured_training, expected_training,
              expected_training * 1e-9);

  // energy_model() derives e^U from the same 144-dim blob and LAN the
  // simulator uses, so with zero jitter/loss the two agree exactly.
  const double expected_upload = model.upload.energy().value() *
                                 rounds_times_k;
  const double measured_upload =
      r->ledger.category_total(energy::EnergyCategory::kUpload).value();
  EXPECT_NEAR(measured_upload, expected_upload, expected_upload * 1e-9);
}

TEST(FeiSystem, TimelinesAreConsistentWithLedger) {
  auto cfg = small_config();
  cfg.timing_jitter = 0.0;
  FeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  // Summing training energy over all timelines = ledger training total.
  double from_timelines = 0.0;
  for (const auto& tl : r->timelines) {
    from_timelines += tl.energy_in_state(energy::EdgeState::kTraining).value();
  }
  EXPECT_NEAR(from_timelines,
              r->ledger.category_total(energy::EnergyCategory::kTraining)
                  .value(),
              from_timelines * 1e-9);
}

TEST(FeiSystem, MeterOnTimelineApproximatesExactEnergy) {
  auto cfg = small_config();
  cfg.fl.max_rounds = 3;
  FeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  energy::PowerMeter meter{energy::MeterConfig{}};
  const auto trace = meter.capture(r->timelines[0]);
  const double exact = r->timelines[0].total_energy().value();
  EXPECT_NEAR(trace.energy().value(), exact, exact * 0.02);
}

TEST(FeiSystem, IotCollectionChargesDevices) {
  auto cfg = small_config();
  cfg.iot_collection = true;
  cfg.fl.max_rounds = 2;
  FeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  const double collected =
      r->ledger.category_total(energy::EnergyCategory::kDataCollection)
          .value();
  // ρ·n_k per selected server per round; 2 rounds × 3 servers × 100 samples.
  const auto model = system.energy_model();
  EXPECT_GT(model.collection.rho.value(), 0.0);
  EXPECT_NEAR(collected,
              model.collection.rho.value() * 100.0 * 6.0,
              collected * 0.05);
}

TEST(FeiSystem, PrototypeModeHasNoCollectionEnergy) {
  FeiSystem system(small_config());
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(
      r->ledger.category_total(energy::EnergyCategory::kDataCollection)
          .value(),
      0.0);
  EXPECT_DOUBLE_EQ(system.energy_model().collection.rho.value(), 0.0);
}

TEST(FeiSystem, ChargeIdleServersAddsWaitingEnergy) {
  auto base_cfg = small_config();
  auto idle_cfg = small_config();
  idle_cfg.charge_idle_servers = true;
  FeiSystem base(base_cfg), idle(idle_cfg);
  const auto rb = base.run();
  const auto ri = idle.run();
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(ri.ok());
  EXPECT_GT(ri->ledger.category_total(energy::EnergyCategory::kWaiting)
                .value(),
            rb->ledger.category_total(energy::EnergyCategory::kWaiting)
                .value());
}

TEST(FeiSystem, DeterministicForSameSeed) {
  FeiSystem a(small_config()), b(small_config());
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->measured_energy().value(),
                   rb->measured_energy().value());
  EXPECT_DOUBLE_EQ(ra->training.record.last().global_loss,
                   rb->training.record.last().global_loss);
  EXPECT_DOUBLE_EQ(ra->wall_clock.value(), rb->wall_clock.value());
}

TEST(FeiSystem, JitterPerturbsTimingOnly) {
  auto cfg = small_config();
  cfg.timing_jitter = 0.05;
  FeiSystem jittered(cfg);
  FeiSystem clean(small_config());
  const auto rj = jittered.run();
  const auto rc = clean.run();
  ASSERT_TRUE(rj.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_NE(rj->wall_clock.value(), rc->wall_clock.value());
  // Learning itself is unaffected by hardware jitter.
  EXPECT_DOUBLE_EQ(rj->training.record.last().global_loss,
                   rc->training.record.last().global_loss);
}

TEST(FeiSystem, MoreEpochsMoreTrainingEnergyPerRound) {
  auto few_cfg = small_config();
  few_cfg.fl.max_rounds = 4;
  few_cfg.fl.local_epochs = 2;
  auto many_cfg = small_config();
  many_cfg.fl.max_rounds = 4;
  many_cfg.fl.local_epochs = 20;
  FeiSystem few(few_cfg), many(many_cfg);
  const auto rf = few.run();
  const auto rm = many.run();
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rm.ok());
  const double tf =
      rf->ledger.category_total(energy::EnergyCategory::kTraining).value();
  const double tm =
      rm->ledger.category_total(energy::EnergyCategory::kTraining).value();
  EXPECT_NEAR(tm / tf, 10.0, 0.5);  // linear in E (Eq. 5)
}

TEST(FeiSystem, StopsAtAccuracyTarget) {
  auto cfg = small_config();
  cfg.fl.max_rounds = 100;
  cfg.fl.local_epochs = 10;
  cfg.fl.target_accuracy = 0.55;
  FeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->training.reached_target);
  EXPECT_LT(r->training.rounds_run, 100u);
}

TEST(FeiSystem, PartitionSchemesChangeSkew) {
  auto iid_cfg = small_config();
  auto shard_cfg = small_config();
  shard_cfg.partition = PartitionScheme::kShards;
  shard_cfg.shards_per_client = 2;
  FeiSystem iid(iid_cfg), shards(shard_cfg);
  ASSERT_TRUE(iid.prepare().ok());
  ASSERT_TRUE(shards.prepare().ok());
  // Non-IID training converges more slowly on the same budget.
  const auto ri = iid.run();
  const auto rs = shards.run();
  ASSERT_TRUE(ri.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(ri->training.record.last().global_loss,
            rs->training.record.last().global_loss);
}

TEST(FeiSystem, InvalidConfigRejected) {
  auto cfg = small_config();
  cfg.num_servers = 0;
  EXPECT_FALSE(FeiSystem(cfg).run().ok());
  auto cfg2 = small_config();
  cfg2.samples_per_server = 0;
  EXPECT_FALSE(FeiSystem(cfg2).run().ok());
}

TEST(FeiSystem, EnergyModelUsesConfiguredLink) {
  auto cfg = small_config();
  cfg.model.input_dim = 784;
  const FeiSystem system(cfg);
  const auto model = system.energy_model();
  // 7850 params → 31420-byte blob + 24-byte message header at 3.4 Mbps.
  const double blob = 31420.0 + 24.0;
  const double duration = blob * 8.0 / 3.4e6 + 0.002;
  EXPECT_NEAR(model.upload.energy().value(), 5.015 * duration, 1e-9);
  EXPECT_NEAR(model.b0(), 7.79e-5 * 100 + 3.34e-3, 1e-4);
}

}  // namespace
}  // namespace eefei::sim
