// Bit-identical parallelism: a run with a thread pool must produce exactly
// the same TrainingOutcome as a serial run — clients train into indexed
// slots, the test-set evaluation reduces fixed-size chunks in order, and
// the sweep engines score lattice points into slots reduced serially.
#include <gtest/gtest.h>

#include <cstring>

#include "core/grid_search.h"
#include "core/planner.h"
#include "core/sensitivity.h"
#include "sim/fei_system.h"

namespace eefei {
namespace {

sim::FeiSystemConfig small_config(sim::PartitionScheme scheme,
                                  std::size_t threads) {
  sim::FeiSystemConfig cfg;
  cfg.num_servers = 6;
  cfg.samples_per_server = 40;
  cfg.test_samples = 200;
  cfg.data.image_side = 12;
  cfg.model.input_dim = 144;
  cfg.model.num_classes = 10;
  cfg.sgd.learning_rate = 0.05;
  cfg.fl.clients_per_round = 3;
  cfg.fl.local_epochs = 5;
  cfg.fl.max_rounds = 3;
  cfg.fl.threads = threads;
  cfg.partition = scheme;
  cfg.seed = 17;
  return cfg;
}

void expect_identical_outcomes(sim::PartitionScheme scheme) {
  sim::FeiSystem serial(small_config(scheme, 0));
  sim::FeiSystem parallel(small_config(scheme, 8));
  const auto a = serial.run();
  const auto b = parallel.run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  const auto& ta = a->training;
  const auto& tb = b->training;
  ASSERT_EQ(ta.final_params.size(), tb.final_params.size());
  EXPECT_EQ(0, std::memcmp(ta.final_params.data(), tb.final_params.data(),
                           ta.final_params.size() * sizeof(double)));
  EXPECT_EQ(ta.rounds_run, tb.rounds_run);
  EXPECT_EQ(ta.total_local_epochs, tb.total_local_epochs);
  ASSERT_EQ(ta.record.rounds(), tb.record.rounds());
  for (std::size_t t = 0; t < ta.record.rounds(); ++t) {
    const auto& ra = ta.record.round(t);
    const auto& rb = tb.record.round(t);
    EXPECT_EQ(ra.global_loss, rb.global_loss) << "round " << t;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << t;
    EXPECT_EQ(ra.mean_local_loss, rb.mean_local_loss) << "round " << t;
    EXPECT_EQ(ra.selected, rb.selected) << "round " << t;
  }
}

TEST(Determinism, ParallelTrainingIsBitIdenticalIid) {
  expect_identical_outcomes(sim::PartitionScheme::kIid);
}

TEST(Determinism, ParallelTrainingIsBitIdenticalShards) {
  expect_identical_outcomes(sim::PartitionScheme::kShards);
}

TEST(Determinism, ParallelTrainingIsBitIdenticalDirichlet) {
  expect_identical_outcomes(sim::PartitionScheme::kDirichlet);
}

TEST(Determinism, GridSearchParallelMatchesSerial) {
  const core::EeFeiPlanner planner(core::PlannerInputs{});
  const auto objective = planner.objective();
  core::GridSearchConfig serial_cfg;
  serial_cfg.threads = 1;
  core::GridSearchConfig parallel_cfg;
  parallel_cfg.threads = 0;
  const auto a = core::grid_search(objective, serial_cfg);
  const auto b = core::grid_search(objective, parallel_cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->best.k, b->best.k);
  EXPECT_EQ(a->best.e, b->best.e);
  EXPECT_EQ(a->best.t, b->best.t);
  EXPECT_EQ(a->best.objective, b->best.objective);  // bitwise
  EXPECT_EQ(a->evaluated, b->evaluated);
  EXPECT_EQ(a->infeasible, b->infeasible);
}

TEST(Determinism, SweepParallelMatchesSerial) {
  const core::EeFeiPlanner planner(core::PlannerInputs{});
  const auto objective = planner.objective();
  const std::vector<std::size_t> ks{1, 2, 5, 10, 20};
  const std::vector<std::size_t> es{1, 10, 40, 80};
  const auto a = core::sweep(objective, ks, es, true, 1);
  const auto b = core::sweep(objective, ks, es, true, 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].k, b[i].k);
    EXPECT_EQ(a[i].e, b[i].e);
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].objective, b[i].objective);  // bitwise
  }
}

TEST(Determinism, SensitivityParallelMatchesSerial) {
  const auto a = core::analyze_sensitivity(core::PlannerInputs{}, 0.2, 1);
  const auto b = core::analyze_sensitivity(core::PlannerInputs{}, 0.2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->entries.size(), b->entries.size());
  for (std::size_t i = 0; i < a->entries.size(); ++i) {
    const auto& ea = a->entries[i];
    const auto& eb = b->entries[i];
    EXPECT_EQ(ea.parameter, eb.parameter);
    EXPECT_EQ(ea.perturbation, eb.perturbation);
    EXPECT_EQ(ea.k_star, eb.k_star);
    EXPECT_EQ(ea.e_star, eb.e_star);
    EXPECT_EQ(ea.t_star, eb.t_star);
    EXPECT_EQ(ea.energy_j, eb.energy_j);  // bitwise
    EXPECT_EQ(ea.regret, eb.regret);      // bitwise
    EXPECT_EQ(ea.feasible, eb.feasible);
  }
}

}  // namespace
}  // namespace eefei
