#include "core/planner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eefei::core {
namespace {

TEST(Planner, DefaultPlanReproducesHeadlineResult) {
  // The paper's headline: with IID data, K* = 1 and optimizing E cuts
  // energy ≈ 49.8% versus the K=1, E=1 baseline.
  EeFeiPlanner planner{PlannerInputs{}};
  const auto plan = planner.plan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->k, 1u);
  EXPECT_GT(plan->e, 5u);
  EXPECT_LT(plan->e, 20u);
  ASSERT_FALSE(plan->comparisons.empty());
  const auto& naive = plan->comparisons.front();
  EXPECT_EQ(naive.baseline.k, 1u);
  EXPECT_EQ(naive.baseline.e, 1u);
  EXPECT_NEAR(naive.savings, 0.498, 0.02);
}

TEST(Planner, PlanMatchesExhaustive) {
  EeFeiPlanner planner{PlannerInputs{}};
  const auto acs = planner.plan();
  const auto grid = planner.plan_exhaustive();
  ASSERT_TRUE(acs.ok());
  ASSERT_TRUE(grid.ok());
  EXPECT_LE(acs->predicted_energy_j, grid->predicted_energy_j * 1.02);
}

TEST(Planner, CustomBaselines) {
  EeFeiPlanner planner{PlannerInputs{}};
  const auto plan =
      planner.plan({{"fig4 operating point", 10, 40}, {"impossible", 1, 500}});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->comparisons.size(), 2u);
  EXPECT_TRUE(plan->comparisons[0].feasible);
  EXPECT_GT(plan->comparisons[0].savings, 0.0);
  EXPECT_FALSE(plan->comparisons[1].feasible);
}

TEST(Planner, CalibrateEnergyFromTimings) {
  PlannerInputs inputs;
  EeFeiPlanner planner(inputs);
  // Synthetic device twice as slow as the Pi: c0/c1 double.
  const energy::TrainingTimeModel slow{2.8054e-5, 1.203e-3};
  std::vector<energy::TimingObservation> obs;
  for (const std::size_t e : {10u, 20u, 40u}) {
    for (const std::size_t n : {100u, 1000u, 2000u}) {
      obs.push_back({e, n, slow.duration(e, n)});
    }
  }
  ASSERT_TRUE(planner.calibrate_energy(obs, Watts{5.553}).ok());
  EXPECT_NEAR(planner.inputs().energy.training.c0, 2.0 * 7.79e-5, 1e-6);
}

TEST(Planner, CalibrateConvergenceFromTraces) {
  PlannerInputs inputs;
  EeFeiPlanner planner(inputs);
  const energy::ConvergenceConstants truth{60.0, 0.02, 3e-4};
  std::vector<energy::ConvergenceObservation> obs;
  for (const std::size_t k : {1u, 5u, 20u}) {
    for (const std::size_t e : {1u, 20u, 60u}) {
      for (const std::size_t t : {40u, 400u}) {
        obs.push_back({k, e, t,
                       truth.gap_bound(static_cast<double>(k),
                                       static_cast<double>(e),
                                       static_cast<double>(t))});
      }
    }
  }
  ASSERT_TRUE(planner.calibrate_convergence(obs).ok());
  EXPECT_NEAR(planner.inputs().constants.a0, 60.0, 1e-6);
  const auto plan = planner.plan();
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(plan->k, 1u);
}

TEST(Planner, HigherVarianceRaisesKStar) {
  PlannerInputs iid;
  PlannerInputs noniid;
  noniid.constants.a1 = 0.2;  // non-IID gradient variance
  const auto plan_iid = EeFeiPlanner(iid).plan();
  const auto plan_noniid = EeFeiPlanner(noniid).plan();
  ASSERT_TRUE(plan_iid.ok());
  ASSERT_TRUE(plan_noniid.ok());
  EXPECT_GT(plan_noniid->k, plan_iid->k)
      << "the paper's §VI-C: K*=1 is an artifact of IID data";
}

TEST(Planner, InfeasibleTargetRejected) {
  PlannerInputs inputs;
  inputs.epsilon = 1e-9;  // cannot beat A1/K even with K = N… (A1/N ≫ ε)
  const auto plan = EeFeiPlanner(inputs).plan();
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, Error::Code::kInfeasible);
}

TEST(Plan, RenderMentionsEverything) {
  EeFeiPlanner planner{PlannerInputs{}};
  const auto plan = planner.plan();
  ASSERT_TRUE(plan.ok());
  const std::string s = plan->render();
  EXPECT_NE(s.find("K* = 1"), std::string::npos);
  EXPECT_NE(s.find("predicted energy"), std::string::npos);
  EXPECT_NE(s.find("naive K=1,E=1"), std::string::npos);
  EXPECT_NE(s.find("savings"), std::string::npos);
}

TEST(Planner, TIsConsistentWithBound) {
  EeFeiPlanner planner{PlannerInputs{}};
  const auto plan = planner.plan();
  ASSERT_TRUE(plan.ok());
  const auto obj = planner.objective();
  EXPECT_LE(obj.bound().gap_bound(static_cast<double>(plan->k),
                                  static_cast<double>(plan->e),
                                  static_cast<double>(plan->t)),
            planner.inputs().epsilon + 1e-9);
}

}  // namespace
}  // namespace eefei::core
