#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace eefei::sim {
namespace {

TEST(EventQueue, ProcessesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Seconds{3.0}, [&] { order.push_back(3); });
  q.schedule_at(Seconds{1.0}, [&] { order.push_back(1); });
  q.schedule_at(Seconds{2.0}, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().value(), 3.0);
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(Seconds{1.0}, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(Seconds{2.0}, [&] {
    q.schedule_in(Seconds{0.5}, [&] { fired_at = q.now().value(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, PastSchedulesClampToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(Seconds{5.0}, [&] {
    q.schedule_at(Seconds{1.0}, [&] { fired_at = q.now().value(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);  // never travels back in time
}

TEST(EventQueue, EventsCanCascade) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.schedule_in(Seconds{0.1}, recurse);
  };
  q.schedule_at(Seconds{0.0}, recurse);
  EXPECT_EQ(q.run(), 10u);
  EXPECT_NEAR(q.now().value(), 0.9, 1e-12);
}

TEST(EventQueue, MaxEventsBudget) {
  EventQueue q;
  int count = 0;
  std::function<void()> forever = [&] {
    ++count;
    q.schedule_in(Seconds{1.0}, forever);
  };
  q.schedule_at(Seconds{0.0}, forever);
  EXPECT_EQ(q.run(100), 100u);
  EXPECT_EQ(count, 100);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, Clear) {
  EventQueue q;
  q.schedule_at(Seconds{1.0}, [] {});
  q.schedule_at(Seconds{2.0}, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
}

}  // namespace
}  // namespace eefei::sim
