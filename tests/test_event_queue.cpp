#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

namespace eefei::sim {
namespace {

TEST(EventQueue, ProcessesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Seconds{3.0}, [&] { order.push_back(3); });
  q.schedule_at(Seconds{1.0}, [&] { order.push_back(1); });
  q.schedule_at(Seconds{2.0}, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().value(), 3.0);
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(Seconds{1.0}, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(Seconds{2.0}, [&] {
    q.schedule_in(Seconds{0.5}, [&] { fired_at = q.now().value(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, PastSchedulesClampToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(Seconds{5.0}, [&] {
    q.schedule_at(Seconds{1.0}, [&] { fired_at = q.now().value(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);  // never travels back in time
}

TEST(EventQueue, EventsCanCascade) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.schedule_in(Seconds{0.1}, recurse);
  };
  q.schedule_at(Seconds{0.0}, recurse);
  EXPECT_EQ(q.run(), 10u);
  EXPECT_NEAR(q.now().value(), 0.9, 1e-12);
}

TEST(EventQueue, MaxEventsBudget) {
  EventQueue q;
  int count = 0;
  std::function<void()> forever = [&] {
    ++count;
    q.schedule_in(Seconds{1.0}, forever);
  };
  q.schedule_at(Seconds{0.0}, forever);
  EXPECT_EQ(q.run(100), 100u);
  EXPECT_EQ(count, 100);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, Clear) {
  EventQueue q;
  q.schedule_at(Seconds{1.0}, [] {});
  q.schedule_at(Seconds{2.0}, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
}

// FIFO must hold among equal timestamps even when the equal-time events are
// interleaved with earlier/later ones and scheduled from inside handlers —
// the property the fleet engine's deterministic upload drain rests on.
TEST(EventQueue, FifoTieBreakSurvivesInterleavedScheduling) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Seconds{2.0}, [&] { order.push_back(10); });
  q.schedule_at(Seconds{1.0}, [&] {
    // Scheduled mid-run, at the same timestamp as event 10 — but later in
    // FIFO order, so it must fire after it.
    q.schedule_at(Seconds{2.0}, [&] { order.push_back(11); });
    order.push_back(0);
  });
  q.schedule_at(Seconds{2.0}, [&] { order.push_back(12); });
  q.schedule_at(Seconds{3.0}, [&] { order.push_back(20); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 10, 12, 11, 20}));
}

// A max_events-stopped run() must resume exactly where it left off: same
// order, same clock, nothing skipped or replayed.
TEST(EventQueue, MaxEventsStopThenResume) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    q.schedule_at(Seconds{static_cast<double>(i)},
                  [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(q.run(2), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(q.now().value(), 1.0);
  EXPECT_EQ(q.pending(), 4u);
  EXPECT_EQ(q.run(3), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(q.now().value(), 5.0);
}

// clear() keeps the clock (the async stop semantic): a reused queue
// continues on the same timeline and still clamps past schedules to it.
TEST(EventQueue, ClearKeepsClockForReuse) {
  EventQueue q;
  q.schedule_at(Seconds{4.0}, [] {});
  q.run();
  q.schedule_at(Seconds{9.0}, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now().value(), 4.0);  // stale-by-design: time survives
  double fired_at = -1.0;
  q.schedule_at(Seconds{1.0}, [&] { fired_at = q.now().value(); });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);  // clamped to the surviving clock
}

// reset() rewinds the clock too: the queue behaves like a fresh one.
TEST(EventQueue, ResetRewindsClock) {
  EventQueue q;
  q.schedule_at(Seconds{4.0}, [] {});
  q.run();
  q.schedule_at(Seconds{9.0}, [] {});
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now().value(), 0.0);
  double fired_at = -1.0;
  q.schedule_at(Seconds{1.0}, [&] { fired_at = q.now().value(); });
  EXPECT_EQ(q.run(), 1u);
  EXPECT_DOUBLE_EQ(fired_at, 1.0);  // not clamped: the clock was rewound
}

// now() must never move backwards across any sequence of schedule/run
// calls, even when callers hand in past timestamps mid-run.
TEST(EventQueue, NowIsMonotonicAcrossRuns) {
  EventQueue q;
  double max_seen = 0.0;
  std::vector<double> stamps;
  auto observe = [&] {
    EXPECT_GE(q.now().value(), max_seen);
    max_seen = std::max(max_seen, q.now().value());
    stamps.push_back(q.now().value());
  };
  q.schedule_at(Seconds{2.0}, [&] {
    observe();
    q.schedule_at(Seconds{0.5}, observe);  // past: clamps to 2.0
  });
  q.run();
  q.schedule_at(Seconds{1.0}, observe);  // past again after the run
  q.run();
  EXPECT_EQ(stamps, (std::vector<double>{2.0, 2.0, 2.0}));
}

// Regression: clear() and reset() used to leave high_water_ at the stale
// pre-clear depth, so a telemetry window opened after either call reported
// ghost queue pressure from the previous phase.  Both must re-arm the mark.
TEST(EventQueue, ClearAndResetReArmHighWater) {
  EventQueue q;
  for (int i = 0; i < 8; ++i) {
    q.schedule_at(Seconds{static_cast<double>(i)}, [] {});
  }
  EXPECT_EQ(q.high_water(), 8u);
  q.clear();
  EXPECT_EQ(q.high_water(), 0u);
  q.schedule_at(Seconds{1.0}, [] {});
  EXPECT_EQ(q.high_water(), 1u);  // tracks the new window, not the ghost 8
  q.reset();
  EXPECT_EQ(q.high_water(), 0u);
}

// Regression: schedule_at used to silently accept NaN/Inf timestamps.  A
// NaN compares false both ways, breaking the Later comparator's strict
// weak ordering and silently corrupting the heap invariant — the schedule
// must be rejected with nothing enqueued.
TEST(EventQueue, RejectsNonFiniteTimestamps) {
  EventQueue q;
  EXPECT_FALSE(q.schedule_at(
      Seconds{std::numeric_limits<double>::quiet_NaN()}, [] {}));
  EXPECT_FALSE(q.schedule_at(
      Seconds{std::numeric_limits<double>::infinity()}, [] {}));
  EXPECT_FALSE(q.schedule_at(
      Seconds{-std::numeric_limits<double>::infinity()}, [] {}));
  EXPECT_FALSE(q.schedule_in(
      Seconds{std::numeric_limits<double>::quiet_NaN()}, [] {}));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.high_water(), 0u);
  EXPECT_EQ(q.run(), 0u);
  // A finite schedule still works on the untouched queue.
  bool fired = false;
  EXPECT_TRUE(q.schedule_at(Seconds{1.0}, [&] { fired = true; }));
  EXPECT_EQ(q.run(), 1u);
  EXPECT_TRUE(fired);
}

// Re-entrancy stress: each handler schedules a fan of new events, forcing
// the heap vector to grow (and reallocate) while the moved-out handler is
// still executing.  ASan guards the dispatch-after-realloc path; the
// counts prove nothing was lost or double-run.
TEST(EventQueue, HandlerSchedulesManyEventsDuringRun) {
  EventQueue q;
  // Start tiny so every early fan-out reallocates the backing vector.
  std::size_t fired = 0;
  std::function<void(int)> fan = [&](int depth) {
    ++fired;
    if (depth == 0) return;
    for (int i = 0; i < 8; ++i) {
      q.schedule_in(Seconds{0.25 * (i + 1)}, [&fan, depth] {
        fan(depth - 1);
      });
    }
  };
  q.schedule_at(Seconds{0.0}, [&fan] { fan(4); });
  // 1 + 8 + 64 + 512 + 4096 events in total.
  EXPECT_EQ(q.run(), 4681u);
  EXPECT_EQ(fired, 4681u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace eefei::sim
