#include "core/acs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/grid_search.h"

namespace eefei::core {
namespace {

EnergyObjective make_objective(double a1, double b1, double epsilon = 0.05,
                               std::size_t n = 20) {
  energy::ConvergenceConstants c = energy::paper_reference_constants();
  c.a1 = a1;
  const ConvergenceBound bound(c, epsilon);
  const double b0 = 7.79e-5 * 3000.0 + 3.34e-3;
  return EnergyObjective(bound, b0, b1, n);
}

TEST(Acs, ConvergesOnReferenceProblem) {
  const auto obj = make_objective(0.005, 0.381);
  const AcsSolver solver;
  const auto sol = solver.solve(obj);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged);
  EXPECT_LE(sol->iterations, 10u);
  // Paper Fig. 5 conclusion under IID calibration: K* = 1.
  EXPECT_EQ(sol->k_int, 1u);
  EXPECT_GE(sol->e_int, 2u);
}

TEST(Acs, ObjectiveMonotonicallyNonIncreasingAcrossIterations) {
  const auto obj = make_objective(0.1, 1.5);
  AcsConfig cfg;
  cfg.initial_k = 18.0;
  cfg.initial_e = 2.0;
  const AcsSolver solver(cfg);
  const auto sol = solver.solve(obj);
  ASSERT_TRUE(sol.ok());
  for (std::size_t i = 1; i < sol->trace.size(); ++i) {
    EXPECT_LE(sol->trace[i].objective,
              sol->trace[i - 1].objective + 1e-9)
        << "ACS increased the objective at iteration " << i;
  }
}

TEST(Acs, InfeasibleProblemRejected) {
  // ε smaller than A1/N: no K can satisfy the bound.
  const auto obj = make_objective(2.0, 0.381, 0.05);
  // A1/K = 2/20 = 0.1 > 0.05 even at E = 1 → infeasible everywhere.
  const AcsSolver solver;
  const auto sol = solver.solve(obj);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.error().code, Error::Code::kInfeasible);
}

TEST(Acs, PaperRuleAlsoConverges) {
  const auto obj = make_objective(0.005, 0.381);
  AcsConfig cfg;
  cfg.e_rule = EStepRule::kPaperEq17;
  const AcsSolver solver(cfg);
  const auto sol = solver.solve(obj);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged);
  // The printed Eq. 17 lands at a larger E than the exact minimizer.
  AcsConfig exact_cfg;
  const auto exact = AcsSolver(exact_cfg).solve(obj);
  ASSERT_TRUE(exact.ok());
  EXPECT_GT(sol->e, exact->e);
  // …and therefore at an objective no better than the exact rule's.
  EXPECT_GE(sol->objective, exact->objective - 1e-9);
}

TEST(Acs, IntegerSolutionConsistentWithBound) {
  const auto obj = make_objective(0.02, 1.0);
  const auto sol = AcsSolver().solve(obj);
  ASSERT_TRUE(sol.ok());
  const auto kd = static_cast<double>(sol->k_int);
  const auto ed = static_cast<double>(sol->e_int);
  EXPECT_TRUE(obj.feasible(kd, ed));
  // The reported T actually meets the bound.
  EXPECT_LE(obj.bound().gap_bound(kd, ed, static_cast<double>(sol->t_int)),
            obj.bound().epsilon() + 1e-9);
  EXPECT_NEAR(sol->objective_int,
              obj.value_at_rounds(kd, ed, static_cast<double>(sol->t_int)),
              1e-9);
}

// Property sweep: ACS (continuous solve + integer rounding) must land within
// a whisker of the exhaustive integer optimum across a range of problem
// shapes.  A pure coordinate-descent method can in principle stall at a
// partial optimum; for this biconvex objective it should not.
class AcsVsGrid
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(AcsVsGrid, WithinTolerancesOfExhaustiveOptimum) {
  const auto [a1, b1, epsilon] = GetParam();
  const auto obj = make_objective(a1, b1, epsilon);
  const auto sol = AcsSolver().solve(obj);
  const auto grid = grid_search(obj);
  if (!grid.ok()) {
    EXPECT_FALSE(sol.ok()) << "grid infeasible but ACS succeeded";
    return;
  }
  ASSERT_TRUE(sol.ok()) << "ACS failed on a feasible problem: "
                        << sol.error().message;
  EXPECT_LE(sol->objective_int, grid->best.objective * 1.02 + 1e-9)
      << "ACS integer point more than 2% off the exhaustive optimum "
      << "(grid K=" << grid->best.k << " E=" << grid->best.e << ")";
}

INSTANTIATE_TEST_SUITE_P(
    ProblemShapes, AcsVsGrid,
    ::testing::Combine(
        ::testing::Values(0.001, 0.005, 0.05, 0.15),   // A1 (variance)
        ::testing::Values(0.05, 0.381, 2.0, 10.0),     // B1 (comm cost)
        ::testing::Values(0.03, 0.05, 0.1)));          // epsilon

TEST(Acs, TraceRecordsIterates) {
  const auto obj = make_objective(0.005, 0.381);
  const auto sol = AcsSolver().solve(obj);
  ASSERT_TRUE(sol.ok());
  ASSERT_GE(sol->trace.size(), 2u);
  EXPECT_EQ(sol->trace.front().iteration, 0u);
  EXPECT_DOUBLE_EQ(sol->trace.back().objective, sol->objective);
}

TEST(Acs, RespectsResidual) {
  const auto obj = make_objective(0.005, 0.381);
  AcsConfig loose;
  loose.residual = 1e6;  // absurdly loose: one iteration is enough
  const auto sol = AcsSolver(loose).solve(obj);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged);
  EXPECT_EQ(sol->iterations, 1u);
}

}  // namespace
}  // namespace eefei::core

namespace eefei::core {
namespace {

TEST(AcsMultistart, MatchesSingleStartOnBiconvexProblem) {
  // On the truly biconvex EE-FEI objective every start converges to the
  // same optimum, so multistart is a no-op (that it is available guards
  // callers who plug in non-biconvex objective variants).
  energy::ConvergenceConstants c = energy::paper_reference_constants();
  const ConvergenceBound bound(c, 0.05);
  const EnergyObjective obj(bound, 7.79e-5 * 3000.0 + 3.34e-3, 0.381, 20);
  AcsConfig single;
  AcsConfig multi;
  multi.extra_starts = 6;
  const auto a = AcsSolver(single).solve(obj);
  const auto b = AcsSolver(multi).solve(obj);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->k_int, b->k_int);
  EXPECT_EQ(a->e_int, b->e_int);
  EXPECT_NEAR(a->objective_int, b->objective_int, 1e-9);
}

TEST(AcsMultistart, NeverWorseAcrossShapes) {
  for (const double a1 : {0.005, 0.05, 0.15}) {
    for (const double b1 : {0.05, 0.381, 5.0}) {
      energy::ConvergenceConstants c = energy::paper_reference_constants();
      c.a1 = a1;
      const ConvergenceBound bound(c, 0.05);
      const EnergyObjective obj(bound, 7.79e-5 * 3000.0 + 3.34e-3, b1, 20);
      AcsConfig multi;
      multi.extra_starts = 4;
      const auto single = AcsSolver().solve(obj);
      const auto best = AcsSolver(multi).solve(obj);
      if (!single.ok()) {
        EXPECT_FALSE(best.ok());
        continue;
      }
      ASSERT_TRUE(best.ok());
      EXPECT_LE(best->objective_int, single->objective_int + 1e-9);
    }
  }
}

// The headline result as a test: the default calibration must keep
// producing the paper's K*=1 / ~49.8% savings even as the library evolves.
TEST(HeadlineResult, PaperSavingsAreStable) {
  const ConvergenceBound bound(energy::paper_reference_constants(), 0.05);
  const EnergyObjective obj(bound, 7.79e-5 * 3000.0 + 3.34e-3, 0.381, 20);
  const auto sol = AcsSolver().solve(obj);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->k_int, 1u);
  const auto t_naive = bound.optimal_rounds_int(1.0, 1.0);
  ASSERT_TRUE(t_naive.ok());
  const double naive = obj.value_at_rounds(
      1.0, 1.0, static_cast<double>(t_naive.value()));
  const double savings = 1.0 - sol->objective_int / naive;
  EXPECT_NEAR(savings, 0.498, 0.015) << "paper reports 49.8%";
}

}  // namespace
}  // namespace eefei::core
