#include "data/partition.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/synth_digits.h"

namespace eefei::data {
namespace {

Dataset make_data(std::size_t n) {
  SynthDigitsConfig cfg;
  cfg.image_side = 8;  // tiny images: partition tests only need labels
  cfg.seed = 5;
  SynthDigits gen(cfg);
  return gen.generate(n);
}

TEST(PartitionIid, EqualSizes) {
  const Dataset ds = make_data(1000);
  Rng rng(1);
  const auto shards = partition_iid(ds, 20, rng);
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards->size(), 20u);
  for (const auto& s : shards.value()) EXPECT_EQ(s.size(), 50u);
}

TEST(PartitionIid, LowLabelSkew) {
  const Dataset ds = make_data(4000);
  Rng rng(2);
  const auto shards = partition_iid(ds, 10, rng);
  ASSERT_TRUE(shards.ok());
  EXPECT_LT(label_skew(shards.value(), 10), 0.15);
}

TEST(PartitionIid, Errors) {
  const Dataset ds = make_data(5);
  Rng rng(3);
  EXPECT_FALSE(partition_iid(ds, 0, rng).ok());
  EXPECT_FALSE(partition_iid(ds, 10, rng).ok());
}

TEST(PartitionShards, SizesAndHighSkew) {
  const Dataset ds = make_data(4000);
  Rng rng(4);
  const auto noniid = partition_shards(ds, 10, 2, rng);
  ASSERT_TRUE(noniid.ok());
  ASSERT_EQ(noniid->size(), 10u);
  for (const auto& s : noniid.value()) EXPECT_EQ(s.size(), 400u);

  Rng rng2(4);
  const auto iid = partition_iid(ds, 10, rng2);
  ASSERT_TRUE(iid.ok());
  EXPECT_GT(label_skew(noniid.value(), 10), 2.0 * label_skew(iid.value(), 10))
      << "shard partition must be markedly more skewed than IID";
}

TEST(PartitionShards, FewLabelsPerClient) {
  const Dataset ds = make_data(4000);
  Rng rng(5);
  const auto shards = partition_shards(ds, 10, 2, rng);
  ASSERT_TRUE(shards.ok());
  for (const auto& s : shards.value()) {
    const auto hist = s.class_histogram(10);
    const std::size_t distinct = static_cast<std::size_t>(
        std::count_if(hist.begin(), hist.end(),
                      [](std::size_t c) { return c > 0; }));
    // Two label-sorted shards touch at most 4 labels (boundary effects).
    EXPECT_LE(distinct, 4u);
  }
}

TEST(PartitionShards, Errors) {
  const Dataset ds = make_data(10);
  Rng rng(6);
  EXPECT_FALSE(partition_shards(ds, 0, 2, rng).ok());
  EXPECT_FALSE(partition_shards(ds, 10, 0, rng).ok());
  EXPECT_FALSE(partition_shards(ds, 10, 5, rng).ok());
}

TEST(PartitionDirichlet, CoversAllExamples) {
  const Dataset ds = make_data(2000);
  Rng rng(7);
  const auto shards = partition_dirichlet(ds, 8, 0.5, rng);
  ASSERT_TRUE(shards.ok());
  std::size_t total = 0;
  for (const auto& s : shards.value()) total += s.size();
  EXPECT_EQ(total, ds.size());
}

TEST(PartitionDirichlet, SkewDecreasesWithAlpha) {
  const Dataset ds = make_data(6000);
  Rng rng_a(8), rng_b(8);
  const auto skewed = partition_dirichlet(ds, 10, 0.1, rng_a);
  const auto mild = partition_dirichlet(ds, 10, 100.0, rng_b);
  ASSERT_TRUE(skewed.ok());
  ASSERT_TRUE(mild.ok());
  EXPECT_GT(label_skew(skewed.value(), 10), label_skew(mild.value(), 10));
  EXPECT_LT(label_skew(mild.value(), 10), 0.15);
}

TEST(PartitionDirichlet, Errors) {
  const Dataset ds = make_data(100);
  Rng rng(9);
  EXPECT_FALSE(partition_dirichlet(ds, 0, 0.5, rng).ok());
  EXPECT_FALSE(partition_dirichlet(ds, 5, 0.0, rng).ok());
  EXPECT_FALSE(partition_dirichlet(ds, 5, -1.0, rng).ok());
}

TEST(LabelSkew, EdgeCases) {
  EXPECT_DOUBLE_EQ(label_skew({}, 10), 0.0);
  const Dataset ds = make_data(200);
  Rng rng(10);
  const auto one = partition_iid(ds, 1, rng);
  ASSERT_TRUE(one.ok());
  // One shard == global distribution: zero skew.
  EXPECT_NEAR(label_skew(one.value(), 10), 0.0, 1e-12);
}

}  // namespace
}  // namespace eefei::data
