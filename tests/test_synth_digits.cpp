#include "data/synth_digits.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace eefei::data {
namespace {

TEST(SynthDigits, GeneratesRequestedCount) {
  SynthDigitsConfig cfg;
  cfg.image_side = 16;
  SynthDigits gen(cfg);
  const Dataset ds = gen.generate(100);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.feature_dim(), 256u);
  EXPECT_EQ(ds.num_classes(), 10u);
}

TEST(SynthDigits, PixelsInUnitRange) {
  SynthDigitsConfig cfg;
  cfg.image_side = 20;
  SynthDigits gen(cfg);
  const Dataset ds = gen.generate(50);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (const double p : ds.features(i)) {
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0);
    }
  }
}

TEST(SynthDigits, DeterministicForSameSeed) {
  SynthDigitsConfig cfg;
  cfg.image_side = 12;
  cfg.seed = 77;
  SynthDigits a(cfg), b(cfg);
  const Dataset da = a.generate(20);
  const Dataset db = b.generate(20);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.label(i), db.label(i));
    const auto fa = da.features(i);
    const auto fb = db.features(i);
    for (std::size_t j = 0; j < fa.size(); ++j) {
      ASSERT_DOUBLE_EQ(fa[j], fb[j]);
    }
  }
}

TEST(SynthDigits, DifferentSeedsDiffer) {
  SynthDigitsConfig a_cfg, b_cfg;
  a_cfg.image_side = b_cfg.image_side = 12;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  SynthDigits a(a_cfg), b(b_cfg);
  const Dataset da = a.generate(5);
  const Dataset db = b.generate(5);
  bool any_diff = false;
  for (std::size_t i = 0; i < 5 && !any_diff; ++i) {
    const auto fa = da.features(i);
    const auto fb = db.features(i);
    for (std::size_t j = 0; j < fa.size(); ++j) {
      if (fa[j] != fb[j]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SynthDigits, GenerateClassProducesOnlyThatLabel) {
  SynthDigitsConfig cfg;
  cfg.image_side = 12;
  SynthDigits gen(cfg);
  const Dataset ds = gen.generate_class(30, 7);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    ASSERT_EQ(ds.label(i), 7);
  }
}

TEST(SynthDigits, LabelsRoughlyUniform) {
  SynthDigitsConfig cfg;
  cfg.image_side = 10;
  SynthDigits gen(cfg);
  const Dataset ds = gen.generate(3000);
  const auto hist = ds.class_histogram();
  for (const std::size_t c : hist) {
    EXPECT_NEAR(static_cast<double>(c), 300.0, 90.0);
  }
}

// Classes must be geometrically distinguishable: the mean intra-class
// distance should be clearly below the mean inter-class distance.
TEST(SynthDigits, ClassCentroidsSeparated) {
  SynthDigitsConfig cfg;
  cfg.image_side = 16;
  SynthDigits gen(cfg);
  const std::size_t per = 40;
  std::vector<std::vector<double>> centroids(10,
                                             std::vector<double>(256, 0.0));
  for (int c = 0; c < 10; ++c) {
    const Dataset ds = gen.generate_class(per, c);
    for (std::size_t i = 0; i < per; ++i) {
      const auto f = ds.features(i);
      for (std::size_t j = 0; j < f.size(); ++j) {
        centroids[static_cast<std::size_t>(c)][j] +=
            f[j] / static_cast<double>(per);
      }
    }
  }
  double min_inter = 1e18;
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      double d = 0;
      for (std::size_t j = 0; j < 256; ++j) {
        const double diff = centroids[a][j] - centroids[b][j];
        d += diff * diff;
      }
      min_inter = std::min(min_inter, d);
    }
  }
  EXPECT_GT(min_inter, 1.0) << "two digit classes are nearly identical";
}

TEST(AsciiArt, ShapeAndRamp) {
  std::vector<double> img(16, 0.0);
  img[0] = 1.0;
  img[5] = 0.5;
  const std::string art = ascii_art(img, 4);
  // 4 rows of 4 chars + newlines.
  EXPECT_EQ(art.size(), 20u);
  EXPECT_EQ(art[0], '@');   // full intensity
  EXPECT_EQ(art[4], '\n');
  EXPECT_EQ(art.back(), '\n');
}

}  // namespace
}  // namespace eefei::data
