// Checkpoint/resume and mini-batch SGD tests.
#include <gtest/gtest.h>

#include <cmath>

#include "data/partition.h"
#include "data/synth_digits.h"
#include "fl/checkpoint.h"
#include "fl/coordinator.h"

namespace eefei::fl {
namespace {

struct World {
  data::Dataset train;
  data::Dataset test;
  std::vector<data::Shard> shards;
  std::vector<Client> clients;

  explicit World(std::size_t batch_size = 0) {
    data::SynthDigitsConfig dcfg;
    dcfg.image_side = 12;
    dcfg.seed = 71;
    data::SynthDigits gen(dcfg);
    train = gen.generate(4 * 60);
    test = gen.generate(200);
    Rng rng(72);
    shards = data::partition_iid(train, 4, rng).value();
    ClientConfig ccfg;
    ccfg.model.input_dim = 144;
    ccfg.sgd.learning_rate = 0.1;
    ccfg.sgd.decay = 0.99;
    ccfg.batch_size = batch_size;
    for (std::size_t k = 0; k < 4; ++k) {
      clients.emplace_back(k, &shards[k], ccfg);
    }
  }
};

CoordinatorConfig config(std::size_t rounds) {
  CoordinatorConfig cfg;
  cfg.clients_per_round = 2;
  cfg.local_epochs = 4;
  cfg.max_rounds = rounds;
  return cfg;
}

TEST(Checkpoint, SerializationRoundTrip) {
  TrainingCheckpoint cp;
  cp.params = {1.0, -2.5, 0.125, 3.75};
  cp.rounds_completed = 1234;
  const auto bytes = serialize_checkpoint(cp);
  const auto restored = deserialize_checkpoint(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->rounds_completed, 1234u);
  ASSERT_EQ(restored->params.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(restored->params[i], cp.params[i], 1e-6);
  }
}

TEST(Checkpoint, RejectsGarbage) {
  EXPECT_FALSE(deserialize_checkpoint(std::vector<std::uint8_t>{1, 2}).ok());
  TrainingCheckpoint cp;
  cp.params = {1.0};
  auto bytes = serialize_checkpoint(cp);
  bytes[0] = 'X';
  EXPECT_FALSE(deserialize_checkpoint(bytes).ok());
  auto bytes2 = serialize_checkpoint(cp);
  bytes2[bytes2.size() - 2] ^= 0xFF;  // corrupt the embedded model blob
  EXPECT_FALSE(deserialize_checkpoint(bytes2).ok());
}

// The core resume property: 10 + 10 resumed rounds == 20 straight rounds,
// bit for bit.  Round-robin selection and the absolute round numbering
// make both runs see identical selections and learning rates.
TEST(Checkpoint, ResumedRunMatchesContinuousRun) {
  World w_straight, w_first, w_second;

  Coordinator straight(&w_straight.clients, &w_straight.test, config(20),
                       std::make_unique<RoundRobinSelection>());
  const auto full = straight.run();
  ASSERT_TRUE(full.ok());

  Coordinator first(&w_first.clients, &w_first.test, config(10),
                    std::make_unique<RoundRobinSelection>());
  const auto half = first.run();
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(half->rounds_run, 10u);

  // Serialize → deserialize the checkpoint, then resume.  (The float32
  // wire format rounds ω, so compare through the same round trip the
  // continuous run's params would survive.)
  const auto cp = half->checkpoint();
  EXPECT_EQ(cp.rounds_completed, 10u);

  Coordinator second(&w_second.clients, &w_second.test, config(10),
                     std::make_unique<RoundRobinSelection>());
  second.resume_from(cp);
  const auto resumed = second.run();
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->rounds_run, 10u);
  // Absolute round indices continue from 10.
  EXPECT_EQ(resumed->record.round(0).round, 10u);

  ASSERT_EQ(resumed->final_params.size(), full->final_params.size());
  for (std::size_t i = 0; i < full->final_params.size(); ++i) {
    ASSERT_NEAR(resumed->final_params[i], full->final_params[i], 1e-12)
        << "param " << i;
  }
  EXPECT_NEAR(resumed->record.last().global_loss,
              full->record.last().global_loss, 1e-12);
}

// Regression: the forced final-round evaluation used to test
// `t + 1 == max_rounds`, which a resumed run (looping over
// [start_round_, start_round_ + max_rounds)) never satisfies — the final
// record silently carried the last periodic evaluation instead of a fresh
// one.  With eval_every > 1 the resumed run must still end on a fresh eval.
TEST(Checkpoint, ResumedFinalRoundForcesFreshEvaluation) {
  World w_straight, w_first, w_second;

  auto full_cfg = config(12);
  full_cfg.eval_every = 5;
  Coordinator straight(&w_straight.clients, &w_straight.test, full_cfg,
                       std::make_unique<RoundRobinSelection>());
  const auto full = straight.run();
  ASSERT_TRUE(full.ok());

  auto half_cfg = config(6);
  half_cfg.eval_every = 5;
  Coordinator first(&w_first.clients, &w_first.test, half_cfg,
                    std::make_unique<RoundRobinSelection>());
  const auto half = first.run();
  ASSERT_TRUE(half.ok());

  Coordinator second(&w_second.clients, &w_second.test, half_cfg,
                     std::make_unique<RoundRobinSelection>());
  second.resume_from(half->checkpoint());
  const auto resumed = second.run();
  ASSERT_TRUE(resumed.ok());

  ASSERT_EQ(resumed->record.last().round, 11u);
  // Fresh final eval — not a copy of the round-10 periodic one.
  EXPECT_NE(resumed->record.last().global_loss,
            resumed->record.round(4).global_loss);
  // And it matches the continuous run's forced final evaluation.
  EXPECT_NEAR(resumed->record.last().global_loss,
              full->record.last().global_loss, 1e-12);
}

// Periodic autosave: resuming from a mid-run checkpoint reproduces the
// uninterrupted run exactly.
TEST(Checkpoint, PeriodicAutosaveResumesToUninterruptedResult) {
  World w_straight, w_auto, w_resume;

  Coordinator straight(&w_straight.clients, &w_straight.test, config(9),
                       std::make_unique<RoundRobinSelection>());
  const auto full = straight.run();
  ASSERT_TRUE(full.ok());

  auto cfg = config(9);
  cfg.checkpoint_every = 3;
  Coordinator with_saves(&w_auto.clients, &w_auto.test, cfg,
                         std::make_unique<RoundRobinSelection>());
  std::vector<TrainingCheckpoint> saves;
  with_saves.set_checkpoint_sink(
      [&](const TrainingCheckpoint& cp) { saves.push_back(cp); });
  const auto out = with_saves.run();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(saves.size(), 3u);
  EXPECT_EQ(saves[0].rounds_completed, 3u);
  EXPECT_EQ(saves[1].rounds_completed, 6u);
  EXPECT_EQ(saves[2].rounds_completed, 9u);
  EXPECT_EQ(saves[2].params, full->final_params);

  // Crash after round 6, restart from the autosave, finish the last 3.
  Coordinator resumed(&w_resume.clients, &w_resume.test, config(3),
                      std::make_unique<RoundRobinSelection>());
  resumed.resume_from(saves[1]);
  const auto r = resumed.run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->record.round(0).round, 6u);
  EXPECT_EQ(r->final_params, full->final_params);
}

TEST(Checkpoint, EvalEveryZeroIsRejected) {
  World w;
  auto cfg = config(4);
  cfg.eval_every = 0;
  Coordinator coord(&w.clients, &w.test, cfg,
                    std::make_unique<RoundRobinSelection>());
  const auto r = coord.run();
  EXPECT_FALSE(r.ok());
}

TEST(Checkpoint, ResumeContinuesLrSchedule) {
  // After resuming at round 100, the client must train with lr·decay^100,
  // not the fresh-run lr.
  World w;
  const std::vector<double> zeros(144 * 10 + 10, 0.0);
  const auto fresh = w.clients[0].train(zeros, 1, 0);
  const auto late = w.clients[0].train(zeros, 1, 100);
  double fresh_norm = 0, late_norm = 0;
  for (std::size_t i = 0; i < zeros.size(); ++i) {
    fresh_norm += fresh.params[i] * fresh.params[i];
    late_norm += late.params[i] * late.params[i];
  }
  EXPECT_LT(late_norm, fresh_norm * std::pow(0.99, 150));
}

TEST(MiniBatch, SweepsTakeMultipleSteps) {
  // With batch 15 on a 60-sample shard, one epoch = 4 optimizer steps, so
  // the parameters move further than one full-batch step at the same lr.
  World full_batch(0), mini(15);
  const std::vector<double> zeros(144 * 10 + 10, 0.0);
  const auto a = full_batch.clients[0].train(zeros, 1, 0);
  const auto b = mini.clients[0].train(zeros, 1, 0);
  double na = 0, nb = 0;
  for (std::size_t i = 0; i < zeros.size(); ++i) {
    na += a.params[i] * a.params[i];
    nb += b.params[i] * b.params[i];
  }
  EXPECT_GT(nb, na * 2.0);
}

TEST(MiniBatch, ConvergesInFederatedLoop) {
  World w(10);
  auto cfg = config(40);
  Coordinator coord(&w.clients, &w.test, cfg,
                    std::make_unique<UniformRandomSelection>(Rng(5)));
  const auto outcome = coord.run();
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->record.last().test_accuracy, 0.6);
  EXPECT_LT(outcome->record.last().global_loss,
            outcome->record.round(0).global_loss * 0.7);
}

TEST(MiniBatch, DeterministicPerClientAndRound) {
  World a(8), b(8);
  const std::vector<double> zeros(144 * 10 + 10, 0.0);
  const auto ua = a.clients[1].train(zeros, 3, 7);
  const auto ub = b.clients[1].train(zeros, 3, 7);
  EXPECT_EQ(ua.params, ub.params);
  // A different round shuffles differently.
  const auto uc = b.clients[1].train(zeros, 3, 8);
  EXPECT_NE(ua.params, uc.params);
}

TEST(MiniBatch, OversizedBatchFallsBackToFullBatch) {
  World full_batch(0), oversized(10000);
  const std::vector<double> zeros(144 * 10 + 10, 0.0);
  const auto a = full_batch.clients[2].train(zeros, 2, 0);
  const auto b = oversized.clients[2].train(zeros, 2, 0);
  EXPECT_EQ(a.params, b.params);
}

}  // namespace
}  // namespace eefei::fl
