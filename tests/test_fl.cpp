// Tests for the FL substrate: client local training, FedAvg aggregation,
// selection policies and the training record.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "data/partition.h"
#include "data/synth_digits.h"
#include "fl/aggregator.h"
#include "fl/client.h"
#include "fl/selection.h"
#include "fl/training_record.h"

namespace eefei::fl {
namespace {

struct SmallWorld {
  data::Dataset train;
  std::vector<data::Shard> shards;
  ClientConfig ccfg;

  explicit SmallWorld(std::size_t servers = 4, std::size_t per = 60) {
    data::SynthDigitsConfig dcfg;
    dcfg.image_side = 12;
    dcfg.seed = 11;
    data::SynthDigits gen(dcfg);
    train = gen.generate(servers * per);
    Rng rng(12);
    shards = data::partition_iid(train, servers, rng).value();
    ccfg.model.input_dim = 144;
    ccfg.model.num_classes = 10;
    ccfg.sgd.learning_rate = 0.05;
    ccfg.sgd.decay = 0.99;
  }
};

TEST(Client, TrainingReducesLocalLoss) {
  SmallWorld w;
  Client client(0, &w.shards[0], w.ccfg);
  const std::size_t dim = 144 * 10 + 10;
  const std::vector<double> zeros(dim, 0.0);
  const auto result = client.train(zeros, 30, 0);
  EXPECT_EQ(result.client, 0u);
  EXPECT_EQ(result.epochs_run, 30u);
  EXPECT_EQ(result.samples_used, w.shards[0].size());
  EXPECT_LT(result.final_loss, result.initial_loss);
  EXPECT_EQ(result.params.size(), dim);
}

TEST(Client, ZeroEpochsReturnsGlobalModel) {
  SmallWorld w;
  Client client(0, &w.shards[0], w.ccfg);
  std::vector<double> global(144 * 10 + 10, 0.1);
  const auto result = client.train(global, 0, 0);
  EXPECT_EQ(result.params, global);
  EXPECT_DOUBLE_EQ(result.initial_loss, result.final_loss);
}

TEST(Client, LaterRoundsUseSmallerLearningRate) {
  SmallWorld w;
  Client client(0, &w.shards[0], w.ccfg);
  const std::vector<double> zeros(144 * 10 + 10, 0.0);
  const auto early = client.train(zeros, 1, 0);
  const auto late = client.train(zeros, 1, 200);  // lr ≈ 0.05·0.99^200
  // The late-round step must move the parameters much less.
  double early_norm = 0, late_norm = 0;
  for (std::size_t i = 0; i < zeros.size(); ++i) {
    early_norm += early.params[i] * early.params[i];
    late_norm += late.params[i] * late.params[i];
  }
  EXPECT_LT(late_norm, early_norm * 0.1);
}

TEST(Client, SampleLimitRestrictsBatch) {
  SmallWorld w;
  ClientConfig limited = w.ccfg;
  limited.sample_limit = 10;
  Client client(0, &w.shards[0], limited);
  EXPECT_EQ(client.num_samples(), 10u);
  const std::vector<double> zeros(144 * 10 + 10, 0.0);
  EXPECT_EQ(client.train(zeros, 1, 0).samples_used, 10u);
}

TEST(Client, LocalLossMatchesInitialTrainLoss) {
  SmallWorld w;
  Client client(1, &w.shards[1], w.ccfg);
  const std::vector<double> zeros(144 * 10 + 10, 0.0);
  const double probe = client.local_loss(zeros);
  const auto result = client.train(zeros, 5, 0);
  EXPECT_NEAR(probe, result.initial_loss, 1e-12);
}

TEST(Aggregator, UniformMeanMatchesEq2) {
  LocalTrainResult a, b;
  a.params = {1.0, 3.0};
  a.samples_used = 10;
  b.params = {3.0, 5.0};
  b.samples_used = 30;
  std::vector<LocalTrainResult> updates{a, b};
  std::vector<double> global;
  ASSERT_TRUE(aggregate(updates, AggregationRule::kUniformMean, global).ok());
  EXPECT_DOUBLE_EQ(global[0], 2.0);
  EXPECT_DOUBLE_EQ(global[1], 4.0);
}

TEST(Aggregator, SampleWeighted) {
  LocalTrainResult a, b;
  a.params = {1.0};
  a.samples_used = 10;
  b.params = {5.0};
  b.samples_used = 30;
  std::vector<LocalTrainResult> updates{a, b};
  std::vector<double> global;
  ASSERT_TRUE(
      aggregate(updates, AggregationRule::kSampleWeighted, global).ok());
  EXPECT_DOUBLE_EQ(global[0], 0.25 * 1.0 + 0.75 * 5.0);
}

TEST(Aggregator, Errors) {
  std::vector<double> global;
  EXPECT_FALSE(aggregate({}, AggregationRule::kUniformMean, global).ok());
  LocalTrainResult a, b;
  a.params = {1.0, 2.0};
  b.params = {1.0};
  std::vector<LocalTrainResult> bad{a, b};
  EXPECT_FALSE(aggregate(bad, AggregationRule::kUniformMean, global).ok());
  LocalTrainResult z1, z2;
  z1.params = {1.0};
  z2.params = {2.0};
  z1.samples_used = z2.samples_used = 0;
  std::vector<LocalTrainResult> zero{z1, z2};
  EXPECT_FALSE(aggregate(zero, AggregationRule::kSampleWeighted, global).ok());
}

TEST(Selection, UniformRandomDistinctAndInRange) {
  UniformRandomSelection sel{Rng(3)};
  for (std::size_t round = 0; round < 50; ++round) {
    const auto ids = sel.select(20, 10, round);
    EXPECT_EQ(ids.size(), 10u);
    std::set<ClientId> uniq(ids.begin(), ids.end());
    EXPECT_EQ(uniq.size(), ids.size());
    for (const auto id : ids) EXPECT_LT(id, 20u);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  }
}

TEST(Selection, UniformRandomClampsK) {
  UniformRandomSelection sel{Rng(4)};
  EXPECT_EQ(sel.select(5, 99, 0).size(), 5u);
}

TEST(Selection, UniformRandomCoversEveryone) {
  UniformRandomSelection sel{Rng(5)};
  std::set<ClientId> seen;
  for (std::size_t round = 0; round < 200; ++round) {
    for (const auto id : sel.select(10, 3, round)) seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Selection, RoundRobinRotates) {
  RoundRobinSelection sel;
  const auto r0 = sel.select(10, 3, 0);
  const auto r1 = sel.select(10, 3, 1);
  EXPECT_EQ(r0, (std::vector<ClientId>{0, 1, 2}));
  EXPECT_EQ(r1, (std::vector<ClientId>{3, 4, 5}));
}

TEST(Selection, RoundRobinHandlesWrap) {
  RoundRobinSelection sel;
  const auto ids = sel.select(5, 4, 3);  // starts at 12 mod 5 = 2
  EXPECT_EQ(ids.size(), 4u);
  std::set<ClientId> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), 4u);
  // The cursor continues from where round 2 ended (id 12 mod 5 = 2), so
  // the wrap picks {2, 3, 4, 0} — not a low-id refill.
  EXPECT_EQ(ids, (std::vector<ClientId>{0, 2, 3, 4}));
}

TEST(Selection, RoundRobinFairOverFullCycle) {
  // Fairness: over any n consecutive rounds every client is selected the
  // same number of times ±1 — the old wrap-around refill systematically
  // over-selected low ids whenever k did not divide n.
  for (const auto [n, k] : {std::pair<std::size_t, std::size_t>{10, 3},
                            {7, 4},
                            {5, 4},
                            {12, 5},
                            {9, 9}}) {
    RoundRobinSelection sel;
    std::vector<std::size_t> counts(n, 0);
    for (std::size_t round = 0; round < n; ++round) {
      for (const auto id : sel.select(n, k, round)) ++counts[id];
    }
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    EXPECT_LE(*hi - *lo, 1u) << "n=" << n << " k=" << k;
    std::size_t total = 0;
    for (const auto c : counts) total += c;
    EXPECT_EQ(total, n * k) << "n=" << n << " k=" << k;
  }
}

TEST(Selection, EnergyAwarePrefersLowSpenders) {
  EnergyAwareSelection sel;
  sel.debit(0, 100.0);
  sel.debit(1, 50.0);
  sel.debit(2, 0.0);
  sel.debit(3, 75.0);
  const auto ids = sel.select(4, 2, 0);
  EXPECT_EQ(ids, (std::vector<ClientId>{1, 2}));
  EXPECT_DOUBLE_EQ(sel.balance(0), 100.0);
  EXPECT_DOUBLE_EQ(sel.balance(99), 0.0);
}

TEST(Selection, EnergyAwareBalancesOverTime) {
  EnergyAwareSelection sel;
  std::vector<double> spent(6, 0.0);
  for (std::size_t round = 0; round < 60; ++round) {
    const auto ids = sel.select(6, 2, round);
    for (const auto id : ids) {
      sel.debit(id, 1.0);
      spent[id] += 1.0;
    }
  }
  const auto [mn, mx] = std::minmax_element(spent.begin(), spent.end());
  EXPECT_LE(*mx - *mn, 1.0) << "energy-aware selection should equalize load";
}

TEST(TrainingRecord, RoundsToTargets) {
  TrainingRecord rec;
  for (std::size_t t = 0; t < 5; ++t) {
    RoundRecord r;
    r.round = t;
    r.global_loss = 2.0 - 0.3 * static_cast<double>(t);
    r.test_accuracy = 0.5 + 0.1 * static_cast<double>(t);
    rec.add(r);
  }
  EXPECT_EQ(rec.rounds_to_accuracy(0.75).value(), 4u);  // acc 0.8 at t=3
  EXPECT_EQ(rec.rounds_to_loss(1.5).value(), 3u);
  EXPECT_FALSE(rec.rounds_to_accuracy(0.99).has_value());
  EXPECT_DOUBLE_EQ(rec.best_accuracy(), 0.9);
  EXPECT_DOUBLE_EQ(rec.final_loss(), 0.8);
}

TEST(TrainingRecord, CsvExport) {
  TrainingRecord rec;
  RoundRecord r;
  r.round = 0;
  r.global_loss = 1.25;
  r.test_accuracy = 0.5;
  r.clients_selected = 3;
  r.local_epochs = 7;
  rec.add(r);
  const std::string csv = rec.to_csv();
  EXPECT_NE(csv.find("round,loss,accuracy"), std::string::npos);
  EXPECT_NE(csv.find("1.25"), std::string::npos);
}

}  // namespace
}  // namespace eefei::fl
