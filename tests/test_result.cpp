#include "common/result.h"

#include <gtest/gtest.h>

#include <string>

namespace eefei {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return Error::invalid_argument("not positive");
  return v;
}

TEST(Result, HoldsValue) {
  const Result<int> r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
}

TEST(Result, HoldsError) {
  const Result<int> r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kInvalidArgument);
  EXPECT_EQ(r.error().message, "not positive");
}

TEST(Result, ValueOr) {
  EXPECT_EQ(parse_positive(3).value_or(0), 3);
  EXPECT_EQ(parse_positive(-3).value_or(42), 42);
}

TEST(Result, MoveOut) {
  Result<std::string> r = std::string("hello world");
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello world");
}

TEST(Result, BoolConversion) {
  EXPECT_TRUE(static_cast<bool>(parse_positive(1)));
  EXPECT_FALSE(static_cast<bool>(parse_positive(0)));
}

TEST(Status, Success) {
  const Status s = Status::success();
  EXPECT_TRUE(s.ok());
}

TEST(Status, Failure) {
  const Status s = Error::io_error("disk on fire");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Error::Code::kIoError);
}

TEST(ErrorCode, ToString) {
  EXPECT_STREQ(to_string(Error::Code::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(Error::Code::kNotConverged), "not_converged");
  EXPECT_STREQ(to_string(Error::Code::kInsufficientData),
               "insufficient_data");
  EXPECT_STREQ(to_string(Error::Code::kParseError), "parse_error");
  EXPECT_STREQ(to_string(Error::Code::kInternal), "internal");
  EXPECT_STREQ(to_string(Error::Code::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(Error::Code::kIoError), "io_error");
}

TEST(ErrorFactories, CarryCodes) {
  EXPECT_EQ(Error::infeasible("x").code, Error::Code::kInfeasible);
  EXPECT_EQ(Error::not_converged("x").code, Error::Code::kNotConverged);
  EXPECT_EQ(Error::insufficient_data("x").code,
            Error::Code::kInsufficientData);
  EXPECT_EQ(Error::parse_error("x").code, Error::Code::kParseError);
  EXPECT_EQ(Error::internal("x").code, Error::Code::kInternal);
}

}  // namespace
}  // namespace eefei
