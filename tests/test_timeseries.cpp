// Round time-series recorder + anomaly radar: column schema, O(1) append
// bookkeeping, the radar's warmup/z-score/absolute rules, and the JSON
// export consumed by tools/trace_check.py and tools/fleet_report.py.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace eefei::obs {
namespace {

RoundStats quiet_round(std::uint64_t r) {
  RoundStats s;
  s.round = static_cast<double>(r);
  s.start_s = static_cast<double>(r) * 0.4;
  s.duration_s = 0.3;
  s.selected = 10.0;
  s.aggregated = 10.0;
  s.energy_j = 1000.0;
  s.energy_training_j = 800.0;
  s.energy_upload_j = 200.0;
  return s;
}

TEST(TimeSeries, ColumnSchemaMatchesRoundStats) {
  const auto& names = RoundSeries::column_names();
  ASSERT_EQ(names.size(), RoundSeries::kColumns);
  // The export contract: these exact names, in this order, ending with the
  // radar's verdict column.  trace_check.py pins the same list.
  const std::vector<std::string> expected = {
      "round",          "start_s",
      "duration_s",     "selected",
      "aggregated",     "stragglers",
      "crashes",        "retries",
      "aborted",        "events",
      "queue_peak",     "gateways",
      "energy_j",       "energy_data_collection_j",
      "energy_waiting_j", "energy_download_j",
      "energy_training_j", "energy_upload_j",
      "energy_retry_j", "energy_aborted_j",
      "link_msgs",      "link_wait_s",
      "link_util_max",  "link_drops",
      "anomaly_mask"};
  ASSERT_EQ(expected.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(expected[i], names[i]) << "column " << i;
  }
}

TEST(TimeSeries, AppendFillsEveryColumnAndSnapshotFindsByName) {
  RoundSeries series;
  EXPECT_TRUE(series.empty());
  for (std::uint64_t r = 0; r < 5; ++r) series.append(quiet_round(r));
  EXPECT_EQ(series.size(), 5u);

  const auto snap = series.snapshot();
  EXPECT_EQ(snap.rows(), 5u);
  for (const char* name : RoundSeries::column_names()) {
    const auto* col = snap.column(name);
    ASSERT_NE(col, nullptr) << name;
    EXPECT_EQ(col->size(), 5u) << name;
  }
  EXPECT_EQ(snap.column("no_such_column"), nullptr);
  EXPECT_EQ((*snap.column("round"))[4], 4.0);
  EXPECT_EQ((*snap.column("energy_training_j"))[0], 800.0);
  EXPECT_TRUE(snap.anomalies.empty());
}

TEST(TimeSeries, RadarWarmupSuppressesZScoreSignals) {
  AnomalyRadar radar;  // warmup 8, z 4.0
  std::vector<Anomaly> out;
  // A 100x duration spike inside the warmup window must not alarm.
  for (std::uint64_t r = 0; r < 7; ++r) {
    RoundStats s = quiet_round(r);
    if (r == 5) s.duration_s = 30.0;
    EXPECT_EQ(radar.observe(s, &out), 0u) << "round " << r;
  }
  EXPECT_TRUE(out.empty());
}

TEST(TimeSeries, RadarFlagsRoundTimeSpikeAfterWarmupDeterministically) {
  // Run the identical stream twice; the radar is pure state-machine, so the
  // verdicts must match exactly.
  for (int rep = 0; rep < 2; ++rep) {
    AnomalyRadar radar;
    std::vector<Anomaly> out;
    std::uint32_t spike_mask = 0;
    for (std::uint64_t r = 0; r < 20; ++r) {
      RoundStats s = quiet_round(r);
      // Mild jitter so the stddev is non-zero, then one 10x spike.
      s.duration_s = 0.3 + 0.001 * static_cast<double>(r % 3);
      if (r == 15) s.duration_s = 3.0;
      const std::uint32_t mask = radar.observe(s, &out);
      if (r == 15) {
        spike_mask = mask;
      } else {
        EXPECT_EQ(mask & kAnomalyRoundTime, 0u) << "round " << r;
      }
    }
    EXPECT_NE(spike_mask & kAnomalyRoundTime, 0u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].round, 15u);
    EXPECT_STREQ(out[0].kind, "round_time");
    EXPECT_EQ(out[0].value, 3.0);
    EXPECT_LT(out[0].threshold, 3.0);
  }
}

TEST(TimeSeries, RadarSpikeFoldsIntoHistory) {
  // A sustained shift alarms once, then becomes the new normal.
  AnomalyRadar radar;
  std::vector<Anomaly> out;
  int flagged = 0;
  for (std::uint64_t r = 0; r < 40; ++r) {
    RoundStats s = quiet_round(r);
    s.duration_s = (r < 12) ? 0.3 + 0.001 * static_cast<double>(r % 3) : 3.0;
    if ((radar.observe(s, &out) & kAnomalyRoundTime) != 0) ++flagged;
  }
  EXPECT_GE(flagged, 1);
  EXPECT_LE(flagged, 4);  // not 28 alarms for 28 shifted rounds
}

TEST(TimeSeries, RadarCrashStormIsAbsoluteAndFiresFromRoundZero) {
  AnomalyRadar radar;
  std::vector<Anomaly> out;
  RoundStats s = quiet_round(0);
  s.selected = 10.0;
  s.crashes = 5.0;  // >= max(3, selected/2) = 5
  const std::uint32_t mask = radar.observe(s, &out);
  EXPECT_NE(mask & kAnomalyCrashStorm, 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_STREQ(out[0].kind, "crash_storm");
  EXPECT_EQ(out[0].value, 5.0);

  // 4 of 10 stays under the bar.
  AnomalyRadar radar2;
  RoundStats calm = quiet_round(0);
  calm.crashes = 4.0;
  EXPECT_EQ(radar2.observe(calm, nullptr) & kAnomalyCrashStorm, 0u);
}

TEST(TimeSeries, RadarDeadlineBurstOnStragglerDrops) {
  AnomalyRadar radar;
  std::vector<Anomaly> out;
  RoundStats s = quiet_round(0);
  s.selected = 4.0;
  s.stragglers = 3.0;  // >= max(3, 2)
  EXPECT_NE(radar.observe(s, &out) & kAnomalyDeadlineBurst, 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_STREQ(out[0].kind, "deadline_burst");
}

TEST(TimeSeries, RadarLinkSaturationNeedsSustainedStreak) {
  AnomalyRadar radar;  // link rule: util >= 0.9 for >= 3 consecutive rounds
  std::vector<Anomaly> out;
  // Two hot rounds, a cool one, then two hot again: no streak reaches 3.
  const double utils[] = {0.95, 0.99, 0.2, 0.93, 0.95};
  for (std::uint64_t r = 0; r < 5; ++r) {
    RoundStats s = quiet_round(r);
    s.link_util_max = utils[r];
    EXPECT_EQ(radar.observe(s, &out) & kAnomalyLinkSaturation, 0u)
        << "round " << r;
  }
  EXPECT_TRUE(out.empty());
}

TEST(TimeSeries, RadarLinkSaturationFiresEachRoundOnceStreakReached) {
  AnomalyRadar radar;
  std::vector<Anomaly> out;
  // Saturated from round 2 on: rounds 4, 5, 6 (streak 3, 4, 5) flag.
  for (std::uint64_t r = 0; r < 7; ++r) {
    RoundStats s = quiet_round(r);
    s.link_util_max = (r >= 2) ? 0.97 : 0.1;
    const std::uint32_t mask = radar.observe(s, &out);
    EXPECT_EQ((mask & kAnomalyLinkSaturation) != 0u, r >= 4) << "round " << r;
  }
  ASSERT_EQ(out.size(), 3u);
  for (const auto& a : out) {
    EXPECT_STREQ(a.kind, "link_saturation");
    EXPECT_EQ(a.value, 0.97);
    EXPECT_EQ(a.threshold, 0.9);
  }
  EXPECT_EQ(out[0].round, 4u);

  // Dipping below the threshold resets the streak: three more hot rounds
  // are needed before it fires again.
  RoundStats cool = quiet_round(7);
  cool.link_util_max = 0.5;
  EXPECT_EQ(radar.observe(cool, nullptr) & kAnomalyLinkSaturation, 0u);
  for (std::uint64_t r = 8; r < 11; ++r) {
    RoundStats s = quiet_round(r);
    s.link_util_max = 0.91;
    const std::uint32_t mask = radar.observe(s, nullptr);
    EXPECT_EQ((mask & kAnomalyLinkSaturation) != 0u, r == 10) << "round " << r;
  }
}

TEST(TimeSeries, SeriesRecordsAnomalyMaskAlignedWithAnomalyList) {
  RoundSeries series;
  for (std::uint64_t r = 0; r < 12; ++r) {
    RoundStats s = quiet_round(r);
    if (r == 9) s.crashes = 7.0;  // absolute rule, no warmup needed
    series.append(s);
  }
  const auto snap = series.snapshot();
  const auto& mask = *snap.column("anomaly_mask");
  for (std::size_t r = 0; r < snap.rows(); ++r) {
    EXPECT_EQ(mask[r] != 0.0, r == 9) << "round " << r;
  }
  ASSERT_FALSE(snap.anomalies.empty());
  for (const auto& a : snap.anomalies) {
    EXPECT_EQ(a.round, 9u);
    EXPECT_NE(mask[a.round], 0.0);
  }
}

TEST(TimeSeries, JsonExportCarriesSchemaRowsColumnsAnomalies) {
  RoundSeries series;
  for (std::uint64_t r = 0; r < 3; ++r) {
    RoundStats s = quiet_round(r);
    if (r == 2) s.crashes = 9.0;
    series.append(s);
  }
  const std::string json = timeseries_json(series.snapshot());
  EXPECT_NE(json.find("\"kind\": \"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"anomalies\""), std::string::npos);
  EXPECT_NE(json.find("\"crash_storm\""), std::string::npos);
  for (const char* name : RoundSeries::column_names()) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }
}

TEST(TimeSeries, EmptySeriesExportsZeroRows) {
  RoundSeries series;
  const auto snap = series.snapshot();
  EXPECT_EQ(snap.rows(), 0u);
  const std::string json = timeseries_json(snap);
  EXPECT_NE(json.find("\"rows\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"timeseries\""), std::string::npos);
}

}  // namespace
}  // namespace eefei::obs
