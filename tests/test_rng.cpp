#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace eefei {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double mean = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  mean /= kN;
  EXPECT_NEAR(mean, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const auto idx = rng.uniform_index(10);
    ASSERT_LT(idx, 10u);
    ++counts[static_cast<std::size_t>(idx)];
  }
  // Chi-squared-ish sanity: each bucket within 10% of expectation.
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / 10, kN / 100);
  }
}

TEST(Rng, UniformIndexOfOneIsZero) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double mean = 0.0, var = 0.0;
  constexpr int kN = 40000;
  std::vector<double> xs(kN);
  for (auto& x : xs) x = rng.normal();
  for (const double x : xs) mean += x;
  mean /= kN;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= kN - 1;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(12);
  double mean = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) mean += rng.normal(10.0, 2.0);
  mean /= kN;
  EXPECT_NEAR(mean, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(15);
  double mean = 0.0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) mean += rng.exponential(2.0);
  mean /= kN;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(16);
  for (const double shape : {0.5, 1.0, 2.5, 7.0}) {
    double mean = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) mean += rng.gamma(shape);
    mean /= kN;
    EXPECT_NEAR(mean, shape, shape * 0.05) << "shape=" << shape;
  }
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng a = parent1.split(0);
  Rng b = parent2.split(0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());

  Rng parent3(99);
  Rng c = parent3.split(1);
  // A different stream id must give a different sequence.
  Rng parent4(99);
  Rng d = parent4.split(0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c.next() == d.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identical
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleUniformFirstPosition) {
  // Every element should land in position 0 roughly equally often.
  std::vector<int> counts(5, 0);
  for (std::uint64_t s = 0; s < 5000; ++s) {
    Rng rng(s);
    std::vector<int> v{0, 1, 2, 3, 4};
    rng.shuffle(v);
    ++counts[static_cast<std::size_t>(v[0])];
  }
  for (const int c : counts) EXPECT_NEAR(c, 1000, 150);
}

}  // namespace
}  // namespace eefei
