#include "fl/server_optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/partition.h"
#include "data/synth_digits.h"
#include "fl/coordinator.h"

namespace eefei::fl {
namespace {

TEST(ServerOptimizer, AverageWithUnitLrAdoptsTheAverage) {
  ServerOptimizer opt(ServerOptimizerConfig{});  // kAverage, lr = 1.0
  std::vector<double> global{1.0, 2.0, 3.0};
  const std::vector<double> avg{0.5, 2.5, 2.0};
  opt.step(global, avg);
  EXPECT_EQ(global, avg);  // exactly Eq. 2
}

TEST(ServerOptimizer, AverageWithDampedLrInterpolates) {
  ServerOptimizerConfig cfg;
  cfg.learning_rate = 0.5;
  ServerOptimizer opt(cfg);
  std::vector<double> global{2.0};
  opt.step(global, std::vector<double>{0.0});
  EXPECT_DOUBLE_EQ(global[0], 1.0);
}

TEST(ServerOptimizer, MomentumAccumulatesAcrossRounds) {
  ServerOptimizerConfig cfg;
  cfg.rule = ServerRule::kFedAvgM;
  cfg.learning_rate = 1.0;
  cfg.momentum = 0.5;
  ServerOptimizer opt(cfg);
  std::vector<double> global{1.0};
  // Round 1: delta = 1 − 0 = 1; buffer = 1; global = 0.
  opt.step(global, std::vector<double>{0.0});
  EXPECT_DOUBLE_EQ(global[0], 0.0);
  // Round 2: avg = global ⇒ delta = 0, but the buffer keeps pushing:
  // buffer = 0.5; global = −0.5.
  opt.step(global, std::vector<double>{0.0});
  EXPECT_DOUBLE_EQ(global[0], -0.5);
}

TEST(ServerOptimizer, AdamNormalizesStepSize) {
  ServerOptimizerConfig cfg;
  cfg.rule = ServerRule::kFedAdam;
  cfg.learning_rate = 0.1;
  ServerOptimizer opt(cfg);
  // Large and small coordinate deltas produce comparable step magnitudes
  // (Adam's per-coordinate normalization).
  std::vector<double> global{10.0, 0.01};
  const std::vector<double> avg{0.0, 0.0};
  opt.step(global, avg);
  const double step_large = 10.0 - global[0];
  const double step_small = 0.01 - global[1];
  EXPECT_GT(step_large, 0.0);
  EXPECT_GT(step_small, 0.0);
  EXPECT_LT(step_large / step_small, 20.0)
      << "Adam should damp the 1000x delta ratio";
}

TEST(ServerOptimizer, ResetClearsState) {
  ServerOptimizerConfig cfg;
  cfg.rule = ServerRule::kFedAvgM;
  ServerOptimizer opt(cfg);
  std::vector<double> global{1.0};
  opt.step(global, std::vector<double>{0.0});
  opt.reset();
  EXPECT_EQ(opt.steps_taken(), 0u);
  std::vector<double> g2{1.0};
  opt.step(g2, std::vector<double>{0.0});
  EXPECT_DOUBLE_EQ(g2[0], 0.0);  // no stale momentum
}

// End-to-end: FedAvgM in the coordinator — plain averaging with lr 1.0
// must be bit-identical to the default path, and momentum must converge.
struct World {
  data::Dataset train;
  data::Dataset test;
  std::vector<data::Shard> shards;
  std::vector<Client> clients;

  World() {
    data::SynthDigitsConfig dcfg;
    dcfg.image_side = 12;
    dcfg.seed = 81;
    data::SynthDigits gen(dcfg);
    train = gen.generate(4 * 60);
    test = gen.generate(200);
    Rng rng(82);
    shards = data::partition_iid(train, 4, rng).value();
    ClientConfig ccfg;
    ccfg.model.input_dim = 144;
    ccfg.sgd.learning_rate = 0.1;
    for (std::size_t k = 0; k < 4; ++k) {
      clients.emplace_back(k, &shards[k], ccfg);
    }
  }
};

TEST(ServerOptimizerFl, DefaultRuleMatchesPlainFedAvg) {
  World a, b;
  CoordinatorConfig cfg;
  cfg.clients_per_round = 2;
  cfg.local_epochs = 3;
  cfg.max_rounds = 8;
  Coordinator plain(&a.clients, &a.test, cfg,
                    std::make_unique<RoundRobinSelection>());
  cfg.server_optimizer.rule = ServerRule::kAverage;
  cfg.server_optimizer.learning_rate = 1.0;
  Coordinator explicit_avg(&b.clients, &b.test, cfg,
                           std::make_unique<RoundRobinSelection>());
  const auto ra = plain.run();
  const auto rb = explicit_avg.run();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->final_params, rb->final_params);
}

TEST(ServerOptimizerFl, MomentumConverges) {
  World w;
  CoordinatorConfig cfg;
  cfg.clients_per_round = 2;
  cfg.local_epochs = 3;
  cfg.max_rounds = 30;
  cfg.server_optimizer.rule = ServerRule::kFedAvgM;
  cfg.server_optimizer.momentum = 0.6;
  Coordinator coord(&w.clients, &w.test, cfg,
                    std::make_unique<UniformRandomSelection>(Rng(3)));
  const auto r = coord.run();
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->record.last().global_loss,
            r->record.round(0).global_loss * 0.7);
  EXPECT_GT(r->record.last().test_accuracy, 0.55);
}

TEST(ServerOptimizerFl, AdamConverges) {
  World w;
  CoordinatorConfig cfg;
  cfg.clients_per_round = 2;
  cfg.local_epochs = 3;
  cfg.max_rounds = 30;
  cfg.server_optimizer.rule = ServerRule::kFedAdam;
  cfg.server_optimizer.learning_rate = 0.05;
  Coordinator coord(&w.clients, &w.test, cfg,
                    std::make_unique<UniformRandomSelection>(Rng(4)));
  const auto r = coord.run();
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->record.last().global_loss, r->record.round(0).global_loss);
  EXPECT_GT(r->record.last().test_accuracy, 0.5);
}

}  // namespace
}  // namespace eefei::fl
