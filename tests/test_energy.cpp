// Tests for the energy substrate: power model, timeline, meter,
// closed-form models, ledger.
#include <gtest/gtest.h>

#include <cmath>

#include "energy/energy_model.h"
#include "energy/ledger.h"
#include "energy/meter.h"
#include "energy/power_model.h"
#include "energy/timeline.h"

namespace eefei::energy {
namespace {

TEST(PowerProfile, PaperMeasuredLevels) {
  const auto p = DevicePowerProfile::raspberry_pi_4b();
  EXPECT_DOUBLE_EQ(p.power(EdgeState::kWaiting).value(), 3.600);
  EXPECT_DOUBLE_EQ(p.power(EdgeState::kDownloading).value(), 4.286);
  EXPECT_DOUBLE_EQ(p.power(EdgeState::kTraining).value(), 5.553);
  EXPECT_DOUBLE_EQ(p.power(EdgeState::kUploading).value(), 5.015);
}

TEST(TrainingTimeModel, ReproducesTableOne) {
  // Every row of the paper's Table I within ~6% (their data has noise;
  // the model is the least-squares line through it).
  const TrainingTimeModel m;
  const struct {
    std::size_t e, n;
    double expected;
  } rows[] = {
      {10, 100, 0.0197},  {10, 500, 0.0749},  {10, 1000, 0.1471},
      {10, 2000, 0.2855}, {20, 100, 0.0403},  {20, 500, 0.1508},
      {20, 1000, 0.2912}, {20, 2000, 0.5721}, {40, 100, 0.0799},
      {40, 500, 0.3026},  {40, 1000, 0.5554}, {40, 2000, 1.1451},
  };
  for (const auto& r : rows) {
    const double predicted = m.duration(r.e, r.n).value();
    EXPECT_NEAR(predicted, r.expected, r.expected * 0.08)
        << "E=" << r.e << " n=" << r.n;
  }
}

TEST(TrainingTimeModel, LinearInEpochsAndSamples) {
  const TrainingTimeModel m;
  EXPECT_NEAR(m.duration(20, 500).value(), 2.0 * m.duration(10, 500).value(),
              1e-12);
}

TEST(LocalTrainingModel, PaperCoefficients) {
  // c0 = P_train · t0 and c1 = P_train · t1 must reproduce §VI-B's fit.
  const auto model = LocalTrainingModel::from_timing(
      TrainingTimeModel{}, Watts{5.553});
  EXPECT_NEAR(model.c0, 7.79e-5, 2e-7);
  EXPECT_NEAR(model.c1, 3.34e-3, 5e-5);
}

TEST(LocalTrainingModel, Eq5Form) {
  const LocalTrainingModel m{1e-4, 2e-3};
  // e^P = c0·E·n + c1·E.
  EXPECT_NEAR(m.energy(40, 3000).value(), 1e-4 * 40 * 3000 + 2e-3 * 40,
              1e-12);
  EXPECT_NEAR(m.per_epoch(3000).value(), 0.302, 1e-12);
}

TEST(DataCollectionModel, Eq4Form) {
  const DataCollectionModel m{Joules{6.08}};
  EXPECT_NEAR(m.energy(100).value(), 608.0, 1e-9);
  const DataCollectionModel prototype{Joules{0.0}};
  EXPECT_DOUBLE_EQ(prototype.energy(5000).value(), 0.0);
}

TEST(UploadModel, FromLink) {
  // 31440 bytes at 3.4 Mbps + 2 ms latency, at 5.015 W.
  const auto m = UploadModel::from_link(Bytes{31440.0},
                                        BitsPerSecond::from_mbps(3.4),
                                        Seconds::from_millis(2.0),
                                        Watts{5.015});
  const double duration = 31440.0 * 8.0 / 3.4e6 + 0.002;
  EXPECT_NEAR(m.energy().value(), 5.015 * duration, 1e-9);
}

TEST(FeiEnergyModel, TotalsAndCoefficients) {
  FeiEnergyModel m;
  m.samples_per_server = 3000;
  m.training = {7.79e-5, 3.34e-3};
  m.upload = {Joules{0.381}};
  m.collection = {Joules{0.0}};
  EXPECT_NEAR(m.b0(), 7.79e-5 * 3000 + 3.34e-3, 1e-12);
  EXPECT_NEAR(m.b1(), 0.381, 1e-12);
  const double per_round = m.per_server_round(10).value();
  EXPECT_NEAR(per_round, 10 * m.b0() + m.b1(), 1e-12);
  EXPECT_NEAR(m.total(10, 4, 25).value(), per_round * 100.0, 1e-9);
}

TEST(Timeline, PushAndTotals) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kWaiting, Seconds{1.0});
  tl.push(EdgeState::kTraining, Seconds{2.0});
  tl.push(EdgeState::kUploading, Seconds{0.5});
  EXPECT_DOUBLE_EQ(tl.total_duration().value(), 3.5);
  EXPECT_NEAR(tl.total_energy().value(),
              3.6 * 1.0 + 5.553 * 2.0 + 5.015 * 0.5, 1e-12);
  EXPECT_NEAR(tl.energy_in_state(EdgeState::kTraining).value(), 11.106,
              1e-12);
  EXPECT_DOUBLE_EQ(tl.time_in_state(EdgeState::kUploading).value(), 0.5);
}

TEST(Timeline, CoalescesRepeatedStates) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kWaiting, Seconds{1.0});
  tl.push(EdgeState::kWaiting, Seconds{2.0});
  EXPECT_EQ(tl.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(tl.intervals()[0].duration.value(), 3.0);
}

TEST(Timeline, IgnoresZeroDuration) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kTraining, Seconds{0.0});
  EXPECT_TRUE(tl.empty());
}

TEST(Timeline, PowerAt) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kDownloading, Seconds{1.0});
  tl.push(EdgeState::kTraining, Seconds{1.0});
  EXPECT_DOUBLE_EQ(tl.power_at(Seconds{0.5}).value(), 4.286);
  EXPECT_DOUBLE_EQ(tl.power_at(Seconds{1.5}).value(), 5.553);
  // Outside the timeline: waiting power.
  EXPECT_DOUBLE_EQ(tl.power_at(Seconds{99.0}).value(), 3.6);
  EXPECT_DOUBLE_EQ(tl.power_at(Seconds{-1.0}).value(), 3.6);
}

TEST(Timeline, Clear) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kTraining, Seconds{1.0});
  tl.clear();
  EXPECT_TRUE(tl.empty());
  EXPECT_DOUBLE_EQ(tl.total_duration().value(), 0.0);
}

TEST(Meter, TraceEnergyMatchesExactIntegral) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kWaiting, Seconds{0.5});
  tl.push(EdgeState::kTraining, Seconds{1.7});
  tl.push(EdgeState::kUploading, Seconds{0.3});
  MeterConfig cfg;
  cfg.sample_rate_hz = 1000.0;  // the prototype's rate
  PowerMeter meter(cfg);
  const PowerTrace trace = meter.capture(tl);
  EXPECT_NEAR(trace.energy().value(), tl.total_energy().value(),
              tl.total_energy().value() * 0.01);
  EXPECT_EQ(trace.size(), 2500u);
}

TEST(Meter, MeanPowerPerStepMatchesProfile) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kDownloading, Seconds{1.0});
  tl.push(EdgeState::kTraining, Seconds{1.0});
  PowerMeter meter{MeterConfig{}};
  const PowerTrace trace = meter.capture(tl);
  EXPECT_NEAR(trace.mean_power(Seconds{0.0}, Seconds{1.0}).value(), 4.286,
              1e-9);
  EXPECT_NEAR(trace.mean_power(Seconds{1.0}, Seconds{2.0}).value(), 5.553,
              1e-9);
}

TEST(Meter, NoiseAveragesOut) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kTraining, Seconds{5.0});
  MeterConfig cfg;
  cfg.noise_stddev_watts = 0.5;
  cfg.seed = 42;
  PowerMeter meter(cfg);
  const PowerTrace trace = meter.capture(tl);
  EXPECT_NEAR(trace.mean_power(Seconds{0.0}, Seconds{5.0}).value(), 5.553,
              0.05);
}

TEST(Meter, DropoutsReduceSampleCount) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kWaiting, Seconds{2.0});
  MeterConfig cfg;
  cfg.dropout_prob = 0.25;
  cfg.seed = 7;
  PowerMeter meter(cfg);
  const PowerTrace trace = meter.capture(tl);
  EXPECT_NEAR(static_cast<double>(trace.size()), 1500.0, 100.0);
}

TEST(Meter, CsvExport) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kWaiting, Seconds{0.01});
  PowerMeter meter{MeterConfig{}};
  const std::string csv = meter.capture(tl).to_csv();
  EXPECT_NE(csv.find("time_s,power_w"), std::string::npos);
  EXPECT_NE(csv.find("3.6"), std::string::npos);
}

TEST(Ledger, ChargeAndTotals) {
  EnergyLedger ledger(3);
  ledger.charge(0, EnergyCategory::kTraining, Joules{5.0});
  ledger.charge(0, EnergyCategory::kUpload, Joules{1.0});
  ledger.charge(2, EnergyCategory::kTraining, Joules{2.0});
  EXPECT_DOUBLE_EQ(ledger.server_total(0).value(), 6.0);
  EXPECT_DOUBLE_EQ(ledger.server_total(1).value(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.category_total(EnergyCategory::kTraining).value(),
                   7.0);
  EXPECT_DOUBLE_EQ(ledger.total().value(), 8.0);
  EXPECT_DOUBLE_EQ(ledger.entry(0, EnergyCategory::kUpload).value(), 1.0);
}

TEST(Ledger, ModeledTotalExcludesOverheads) {
  EnergyLedger ledger(1);
  ledger.charge(0, EnergyCategory::kDataCollection, Joules{1.0});
  ledger.charge(0, EnergyCategory::kTraining, Joules{2.0});
  ledger.charge(0, EnergyCategory::kUpload, Joules{3.0});
  ledger.charge(0, EnergyCategory::kWaiting, Joules{10.0});
  ledger.charge(0, EnergyCategory::kDownload, Joules{20.0});
  EXPECT_DOUBLE_EQ(ledger.modeled_total().value(), 6.0);
  EXPECT_DOUBLE_EQ(ledger.total().value(), 36.0);
}

TEST(Ledger, MergeAndReset) {
  EnergyLedger a(2), b(2);
  a.charge(0, EnergyCategory::kTraining, Joules{1.0});
  b.charge(0, EnergyCategory::kTraining, Joules{2.0});
  b.charge(1, EnergyCategory::kUpload, Joules{4.0});
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total().value(), 7.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.total().value(), 0.0);
}

TEST(Ledger, RenderContainsCategories) {
  EnergyLedger ledger(1);
  ledger.charge(0, EnergyCategory::kTraining, Joules{1.5});
  const std::string s = ledger.render();
  EXPECT_NE(s.find("training"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(EdgeStateNames, AllDistinct) {
  EXPECT_STREQ(to_string(EdgeState::kWaiting), "waiting");
  EXPECT_STREQ(to_string(EdgeState::kDownloading), "downloading");
  EXPECT_STREQ(to_string(EdgeState::kTraining), "training");
  EXPECT_STREQ(to_string(EdgeState::kUploading), "uploading");
  EXPECT_STREQ(to_string(EnergyCategory::kDataCollection),
               "data_collection");
}

}  // namespace
}  // namespace eefei::energy
