#include "energy/calibration.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace eefei::energy {
namespace {

// The paper's Table I, verbatim.
std::vector<TimingObservation> table_one() {
  return {
      {10, 100, Seconds{0.0197}},  {10, 500, Seconds{0.0749}},
      {10, 1000, Seconds{0.1471}}, {10, 2000, Seconds{0.2855}},
      {20, 100, Seconds{0.0403}},  {20, 500, Seconds{0.1508}},
      {20, 1000, Seconds{0.2912}}, {20, 2000, Seconds{0.5721}},
      {40, 100, Seconds{0.0799}},  {40, 500, Seconds{0.3026}},
      {40, 1000, Seconds{0.5554}}, {40, 2000, Seconds{1.1451}},
  };
}

TEST(TimingFit, RecoversPaperCoefficientsFromTableOne) {
  const auto obs = table_one();
  const auto fit = fit_training_time(obs, Watts{5.553});
  ASSERT_TRUE(fit.ok());
  // §VI-B: c0 = 7.79e-5, c1 = 3.34e-3 by least squares on this table.
  EXPECT_NEAR(fit->energy.c0, 7.79e-5, 3e-6);
  EXPECT_NEAR(fit->energy.c1, 3.34e-3, 1.5e-3);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(TimingFit, ExactSyntheticRecovery) {
  const TrainingTimeModel truth{2e-5, 5e-4};
  std::vector<TimingObservation> obs;
  for (const std::size_t e : {5u, 10u, 20u}) {
    for (const std::size_t n : {100u, 400u, 1600u}) {
      obs.push_back({e, n, truth.duration(e, n)});
    }
  }
  const auto fit = fit_training_time(obs, Watts{5.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->timing.seconds_per_sample_epoch, 2e-5, 1e-12);
  EXPECT_NEAR(fit->timing.seconds_per_epoch, 5e-4, 1e-10);
  EXPECT_NEAR(fit->energy.c0, 1e-4, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(TimingFit, Errors) {
  EXPECT_FALSE(fit_training_time({}, Watts{5.0}).ok());
  const std::vector<TimingObservation> one{{10, 100, Seconds{0.02}}};
  EXPECT_FALSE(fit_training_time(one, Watts{5.0}).ok());
  const std::vector<TimingObservation> zero_e{{0, 100, Seconds{0.02}},
                                              {10, 200, Seconds{0.04}}};
  EXPECT_FALSE(fit_training_time(zero_e, Watts{5.0}).ok());
  // Same n everywhere: slope is unidentifiable.
  const std::vector<TimingObservation> degenerate{
      {10, 100, Seconds{0.02}}, {20, 100, Seconds{0.04}}};
  EXPECT_FALSE(fit_training_time(degenerate, Watts{5.0}).ok());
}

TEST(ConvergenceConstants, GapBoundForm) {
  const ConvergenceConstants c{100.0, 0.005, 5.6e-4};
  // A0/(TE) + A1/K + A2(E−1).
  EXPECT_NEAR(c.gap_bound(10.0, 40.0, 90.0),
              100.0 / 3600.0 + 0.0005 + 5.6e-4 * 39.0, 1e-12);
}

TEST(ConvergenceFit, RecoversKnownConstants) {
  const ConvergenceConstants truth{80.0, 0.01, 4e-4};
  std::vector<ConvergenceObservation> obs;
  for (const std::size_t k : {1u, 2u, 5u, 10u, 20u}) {
    for (const std::size_t e : {1u, 10u, 40u, 80u}) {
      for (const std::size_t t : {50u, 200u, 800u}) {
        obs.push_back({k, e, t,
                       truth.gap_bound(static_cast<double>(k),
                                       static_cast<double>(e),
                                       static_cast<double>(t))});
      }
    }
  }
  const auto fit = fit_convergence_constants(obs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->constants.a0, 80.0, 1e-6);
  EXPECT_NEAR(fit->constants.a1, 0.01, 1e-9);
  EXPECT_NEAR(fit->constants.a2, 4e-4, 1e-10);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
}

TEST(ConvergenceFit, RobustToNoise) {
  const ConvergenceConstants truth{80.0, 0.01, 4e-4};
  Rng rng(33);
  std::vector<ConvergenceObservation> obs;
  for (const std::size_t k : {1u, 2u, 5u, 10u, 20u}) {
    for (const std::size_t e : {1u, 10u, 40u, 80u}) {
      for (const std::size_t t : {50u, 200u, 800u}) {
        const double gap = truth.gap_bound(static_cast<double>(k),
                                           static_cast<double>(e),
                                           static_cast<double>(t));
        obs.push_back({k, e, t, gap * (1.0 + rng.normal(0.0, 0.03))});
      }
    }
  }
  const auto fit = fit_convergence_constants(obs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->constants.a0, 80.0, 8.0);
  EXPECT_GT(fit->r_squared, 0.95);
}

TEST(ConvergenceFit, ClampsNegativeConstants) {
  // Observations implying a negative A2 (gap shrinking with E) still
  // produce a usable (positive) constant set.
  std::vector<ConvergenceObservation> obs;
  for (const std::size_t e : {1u, 20u, 60u}) {
    for (const std::size_t k : {1u, 5u, 9u}) {
      obs.push_back(
          {k, e, 100, 0.5 / static_cast<double>(e) +
                          0.01 / static_cast<double>(k)});
    }
  }
  const auto fit = fit_convergence_constants(obs);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->constants.a0, 0.0);
  EXPECT_GT(fit->constants.a1, 0.0);
  EXPECT_GT(fit->constants.a2, 0.0);
}

TEST(ConvergenceFit, Errors) {
  EXPECT_FALSE(fit_convergence_constants({}).ok());
  const std::vector<ConvergenceObservation> two{{1, 1, 10, 0.5},
                                                {2, 2, 20, 0.3}};
  EXPECT_FALSE(fit_convergence_constants(two).ok());
  const std::vector<ConvergenceObservation> zero{{0, 1, 10, 0.5},
                                                 {2, 2, 20, 0.3},
                                                 {3, 3, 30, 0.2}};
  EXPECT_FALSE(fit_convergence_constants(zero).ok());
}

TEST(PaperReferenceConstants, MatchDesignDoc) {
  const auto c = paper_reference_constants();
  EXPECT_DOUBLE_EQ(c.a0, 100.0);
  EXPECT_DOUBLE_EQ(c.a1, 0.005);
  EXPECT_DOUBLE_EQ(c.a2, 5.6e-4);
}

}  // namespace
}  // namespace eefei::energy
