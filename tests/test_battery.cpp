#include "energy/battery.h"

#include <gtest/gtest.h>

#include "net/iot_device.h"

namespace eefei::energy {
namespace {

TEST(Battery, DrainsAndDepletes) {
  Battery b(Joules{10.0});
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  const auto first = b.drain(Joules{4.0});
  EXPECT_TRUE(first.completed);
  EXPECT_DOUBLE_EQ(first.drained.value(), 4.0);
  EXPECT_DOUBLE_EQ(b.remaining().value(), 6.0);
  EXPECT_NEAR(b.state_of_charge(), 0.6, 1e-12);
  const auto second = b.drain(Joules{7.0});  // ran out mid-draw
  EXPECT_FALSE(second.completed);
  // Clamp semantics: only the Joules the battery held were supplied.
  EXPECT_DOUBLE_EQ(second.drained.value(), 6.0);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining().value(), 0.0);
}

TEST(Battery, ExactDrainToEmptyCompletes) {
  Battery b(Joules{5.0});
  const auto r = b.drain(Joules{5.0});
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.drained.value(), 5.0);
  EXPECT_TRUE(b.depleted());
  const auto dead = b.drain(Joules{1.0});
  EXPECT_FALSE(dead.completed);
  EXPECT_DOUBLE_EQ(dead.drained.value(), 0.0);
}

TEST(Battery, ZeroDrainNoOp) {
  Battery b(Joules{5.0});
  const auto r = b.drain(Joules{0.0});
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.drained.value(), 0.0);
  EXPECT_DOUBLE_EQ(b.remaining().value(), 5.0);
}

TEST(Battery, DrainedTotalsEqualBatteryDelta) {
  // Ledger-conservation property: summing DrainResult::drained over any
  // draw sequence equals the battery's charge delta, even past depletion.
  Battery b(Joules{3.0});
  double ledger = 0.0;
  for (const double amount : {1.25, 0.5, 2.0, 4.0, 0.75}) {
    ledger += b.drain(Joules{amount}).drained.value();
  }
  EXPECT_DOUBLE_EQ(ledger, b.capacity().value() - b.remaining().value());
  EXPECT_DOUBLE_EQ(ledger, 3.0);  // fully depleted, nothing over-reported
}

TEST(Battery, Recharge) {
  Battery b(Joules{5.0});
  (void)b.drain(Joules{5.0});
  EXPECT_TRUE(b.depleted());
  b.recharge();
  EXPECT_FALSE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining().value(), 5.0);
}

TEST(LifetimeEstimate, UniformRotation) {
  // 100 J battery, 2 J per participation, fleet 10, 2 participate/round:
  // a member participates every 5 rounds and survives 50 participations →
  // first death at round 250.
  const auto est = estimate_lifetime(Joules{100.0}, Joules{2.0}, 10, 2, 300);
  EXPECT_EQ(est.rounds_until_first_death, 250u);
  EXPECT_DOUBLE_EQ(est.fleet_alive_fraction_at_horizon, 0.0);
  const auto est2 = estimate_lifetime(Joules{100.0}, Joules{2.0}, 10, 2, 200);
  EXPECT_DOUBLE_EQ(est2.fleet_alive_fraction_at_horizon, 1.0);
}

TEST(LifetimeEstimate, DegenerateInputs) {
  const auto est = estimate_lifetime(Joules{100.0}, Joules{0.0}, 10, 2, 50);
  EXPECT_EQ(est.rounds_until_first_death, 50u);
  EXPECT_DOUBLE_EQ(est.fleet_alive_fraction_at_horizon, 1.0);
}

TEST(LifetimeEstimate, MoreParticipantsDieFaster) {
  const auto few = estimate_lifetime(Joules{100.0}, Joules{1.0}, 20, 1, 0);
  const auto many = estimate_lifetime(Joules{100.0}, Joules{1.0}, 20, 20, 0);
  EXPECT_GT(few.rounds_until_first_death, many.rounds_until_first_death);
  EXPECT_EQ(many.rounds_until_first_death, 100u);
}

}  // namespace
}  // namespace eefei::energy

namespace eefei::net {
namespace {

TEST(BatteryDevice, StopsTransmittingWhenDepleted) {
  IotDeviceConfig cfg;
  cfg.uplink.collision_probability = 0.0;
  cfg.sample_bytes = Bytes{100.0};
  // Per-sample energy = 7.74e-3 * 100 = 0.774 J; a 2 J battery survives
  // two full samples and dies during the third.
  cfg.battery_capacity = Joules{2.0};
  IotDevice dev(0, cfg, Rng(1));
  EXPECT_TRUE(dev.upload_sample().delivered);
  EXPECT_TRUE(dev.upload_sample().delivered);
  const auto fatal = dev.upload_sample();  // died mid-transmission
  EXPECT_FALSE(fatal.delivered);
  EXPECT_FALSE(dev.alive());
  // The fatal attempt reports only the Joules the battery still held, so
  // the device's energy ledger equals the battery delta exactly.
  EXPECT_LT(fatal.device_energy.value(), 0.774);
  EXPECT_DOUBLE_EQ(dev.lifetime_energy().value(), 2.0);
  const auto after_death = dev.upload_sample();
  EXPECT_FALSE(after_death.delivered);
  EXPECT_DOUBLE_EQ(after_death.device_energy.value(), 0.0);
}

TEST(BatteryDevice, MainsPoweredNeverDies) {
  IotDeviceConfig cfg;
  cfg.sample_bytes = Bytes{100.0};
  IotDevice dev(0, cfg, Rng(2));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(dev.upload_sample().delivered);
  }
  EXPECT_TRUE(dev.alive());
  EXPECT_FALSE(dev.battery().has_value());
}

TEST(BatteryFleet, RoutesAroundDeadDevices) {
  IotDeviceConfig cfg;
  cfg.uplink.collision_probability = 0.0;
  cfg.sample_bytes = Bytes{100.0};
  cfg.battery_capacity = Joules{1.0};  // one sample each (0.774 J)
  DeviceFleet fleet(4, cfg, Rng(3));
  EXPECT_EQ(fleet.alive_count(), 4u);
  const auto r = fleet.collect(10);
  // Each device delivers 1 sample and dies attempting the 2nd.
  EXPECT_EQ(r.samples_delivered, 4u);
  EXPECT_EQ(fleet.alive_count(), 0u);
  EXPECT_EQ(r.devices_depleted, 4u);
  // Collection energy equals the summed battery deltas (4 × 1 J drained to
  // empty) — the old accounting reported the full attempt cost and thus
  // more Joules than the batteries ever held.
  EXPECT_DOUBLE_EQ(r.total_energy.value(), 4.0);
  // A further collect does nothing (and terminates).
  const auto r2 = fleet.collect(5);
  EXPECT_EQ(r2.samples_delivered, 0u);
  EXPECT_DOUBLE_EQ(r2.total_energy.value(), 0.0);
}

TEST(BatteryFleet, PartialDepletionStillDelivers) {
  IotDeviceConfig cfg;
  cfg.uplink.collision_probability = 0.0;
  cfg.sample_bytes = Bytes{100.0};
  cfg.battery_capacity = Joules{100.0};  // ~129 samples each
  DeviceFleet fleet(3, cfg, Rng(4));
  const auto r = fleet.collect(60);
  EXPECT_EQ(r.samples_delivered, 60u);
  EXPECT_EQ(fleet.alive_count(), 3u);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_LT(fleet.device(i).battery()->state_of_charge(), 1.0);
    EXPECT_GT(fleet.device(i).battery()->state_of_charge(), 0.5);
  }
}

}  // namespace
}  // namespace eefei::net
