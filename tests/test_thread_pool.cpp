#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/telemetry.h"

namespace eefei {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<double> out(kN, 0.0);
  pool.parallel_for(kN, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kN) *
                              static_cast<double>(kN - 1));
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForZeroIsFree) {
  // Regression: a zero-length loop must return before the submission path —
  // no queue traffic, no fn invocation.  The pool.tasks counter observes
  // queue traffic directly, so a regression that re-introduces submission
  // for n == 0 trips the counter check, not just the invocation check.
  obs::Telemetry telemetry;
  const obs::TelemetryScope scope(telemetry);
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(telemetry.metrics.snapshot().counter_value("pool.tasks"), 0.0);
}

TEST(ThreadPool, QueueMetricsCountSubmittedTasks) {
  obs::Telemetry telemetry;
  const obs::TelemetryScope scope(telemetry);
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();
  const auto snapshot = telemetry.metrics.snapshot();
  EXPECT_EQ(snapshot.counter_value("pool.tasks"), 32.0);
  // Every task's wait and run latency landed in the histograms.
  for (const auto& h : snapshot.histograms) {
    if (h.name == "pool.task_wait.ns" || h.name == "pool.task_run.ns") {
      EXPECT_EQ(h.count, 32u) << h.name;
    }
  }
  // Gauge exists and has settled at zero depth after the drain.
  EXPECT_EQ(snapshot.gauge_value("pool.queue_depth"), 0.0);
}

TEST(ThreadPool, PlanChunksNeverProducesEmptyChunks) {
  // Regression: chunks = min(n, 4·workers) queued one single-index task per
  // item whenever workers < n < 4·workers — for a handful of ModelBank
  // chunks the queue traffic outweighed the work.  plan_chunks must keep
  // every chunk non-empty (chunks <= n) and cap queue traffic at one chunk
  // per worker until the loop is big enough to split 4-ways.
  for (std::size_t workers = 1; workers <= 16; ++workers) {
    for (std::size_t n = 0; n <= workers * 6; ++n) {
      const std::size_t chunks = ThreadPool::plan_chunks(n, workers);
      if (n == 0) {
        EXPECT_EQ(chunks, 0u);
        continue;
      }
      ASSERT_GE(chunks, 1u) << "n=" << n << " workers=" << workers;
      ASSERT_LE(chunks, n) << "n=" << n << " workers=" << workers;
      // The begin/end arithmetic parallel_for uses must cover [0, n) with
      // no empty chunk.
      std::size_t covered = 0;
      for (std::size_t ci = 0; ci < chunks; ++ci) {
        const std::size_t begin = n * ci / chunks;
        const std::size_t end = n * (ci + 1) / chunks;
        ASSERT_LT(begin, end) << "empty chunk " << ci << " of " << chunks
                              << " for n=" << n << " workers=" << workers;
        covered += end - begin;
      }
      ASSERT_EQ(covered, n);
      // Small loops: exactly one chunk per worker (or per item), never the
      // old one-task-per-index spam.
      if (n > workers && n < workers * 4) {
        EXPECT_EQ(chunks, workers) << "n=" << n << " workers=" << workers;
      }
      if (n >= workers * 4) EXPECT_EQ(chunks, workers * 4);
    }
  }
  // Defensive: a zero-worker plan still yields a runnable (inline) chunk.
  EXPECT_EQ(ThreadPool::plan_chunks(5, 0), 1u);
}

TEST(ThreadPool, SmallParallelForCoversAllIndicesOnce) {
  // The workers < n < 4·workers regime the chunking fix targets.
  ThreadPool pool(4);
  constexpr std::size_t kN = 6;
  std::array<std::atomic<int>, kN> hits{};
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins
  // All tasks submitted before destruction must have run.
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace eefei
