#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace eefei {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<double> out(kN, 0.0);
  pool.parallel_for(kN, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kN) *
                              static_cast<double>(kN - 1));
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins
  // All tasks submitted before destruction must have run.
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace eefei
