#include "common/table.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace eefei {
namespace {

TEST(AsciiTable, RendersHeaderSeparatorRows) {
  AsciiTable t({"E", "n_k", "time_s"});
  t.add_row({10.0, 100.0, 0.0197});
  t.add_row({40.0, 2000.0, 1.1451});
  const std::string s = t.render();
  EXPECT_NE(s.find("| E "), std::string::npos);
  EXPECT_NE(s.find("0.0197"), std::string::npos);
  EXPECT_NE(s.find("1.1451"), std::string::npos);
  // header + separator + 2 rows = 4 lines
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(AsciiTable, PadsShortRows) {
  AsciiTable t({"a", "b", "c"});
  t.add_row(std::vector<std::string>{"only"});
  const std::string s = t.render();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(AsciiTable, ColumnsAligned) {
  AsciiTable t({"x", "longheader"});
  t.add_row(std::vector<std::string>{"verylongvalue", "1"});
  const std::string s = t.render();
  // Every line has the same length.
  std::size_t pos = 0, first_len = std::string::npos;
  while (pos < s.size()) {
    const auto nl = s.find('\n', pos);
    const std::size_t len = nl - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = nl + 1;
  }
}

TEST(FormatDouble, SignificantDigits) {
  EXPECT_EQ(format_double(3.14159265, 3), "3.14");
  EXPECT_EQ(format_double(1e-7, 6), "1e-07");
  EXPECT_EQ(format_double(42.0), "42");
}

TEST(AsciiTable, RowCount) {
  AsciiTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row(std::vector<double>{1.0});
  t.add_row(std::vector<double>{2.0});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace eefei
