#include "sim/edge_server_sim.h"

#include <gtest/gtest.h>

namespace eefei::sim {
namespace {

using energy::EdgeState;

TEST(EdgeServerSim, RecordsPhases) {
  EdgeServerSim server(0, {});
  server.run_phase(EdgeState::kDownloading, Seconds{0.0}, Seconds{0.1});
  server.run_phase(EdgeState::kTraining, Seconds{0.1}, Seconds{1.0});
  server.run_phase(EdgeState::kUploading, Seconds{1.1}, Seconds{0.2});
  EXPECT_DOUBLE_EQ(server.busy_until().value(), 1.3);
  EXPECT_EQ(server.timeline().intervals().size(), 3u);
  EXPECT_NEAR(server.energy_in(EdgeState::kTraining).value(), 5.553, 1e-12);
}

TEST(EdgeServerSim, FillsGapsWithWaiting) {
  EdgeServerSim server(1, {});
  server.run_phase(EdgeState::kDownloading, Seconds{0.5}, Seconds{0.1});
  // Gap 0–0.5 became waiting.
  const auto& ivals = server.timeline().intervals();
  ASSERT_EQ(ivals.size(), 2u);
  EXPECT_EQ(ivals[0].state, EdgeState::kWaiting);
  EXPECT_DOUBLE_EQ(ivals[0].duration.value(), 0.5);
  EXPECT_NEAR(server.energy_in(EdgeState::kWaiting).value(), 3.6 * 0.5,
              1e-12);
}

TEST(EdgeServerSim, IdleUntilExtendsTimeline) {
  EdgeServerSim server(2, {});
  server.run_phase(EdgeState::kTraining, Seconds{0.0}, Seconds{1.0});
  server.idle_until(Seconds{3.0});
  EXPECT_DOUBLE_EQ(server.busy_until().value(), 3.0);
  EXPECT_DOUBLE_EQ(
      server.timeline().time_in_state(EdgeState::kWaiting).value(), 2.0);
  // idle_until into the past is a no-op.
  server.idle_until(Seconds{1.0});
  EXPECT_DOUBLE_EQ(server.busy_until().value(), 3.0);
}

TEST(EdgeServerSim, TotalEnergyIsSumOfStates) {
  EdgeServerSim server(3, {});
  server.run_phase(EdgeState::kDownloading, Seconds{0.0}, Seconds{0.5});
  server.run_phase(EdgeState::kUploading, Seconds{1.0}, Seconds{0.5});
  const double expected = 4.286 * 0.5 + 3.6 * 0.5 + 5.015 * 0.5;
  EXPECT_NEAR(server.total_energy().value(), expected, 1e-12);
}

}  // namespace
}  // namespace eefei::sim
