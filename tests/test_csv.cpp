#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace eefei {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_header({"a", "b"});
  w.write_row({1.0, 2.5});
  w.write_row({-3.0, 1e-7});
  EXPECT_EQ(out.str(), "a,b\n1,2.5\n-3,1e-07\n");
  EXPECT_EQ(w.rows_written(), 3u);
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(CsvParse, RoundTrip) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_header({"name", "value"});
  w.write_row({std::vector<std::string>{"x,y", "1"}});
  w.write_row({std::vector<std::string>{"he said \"hi\"", "2"}});
  const auto doc = parse_csv(out.str());
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0][0], "x,y");
  EXPECT_EQ(doc->rows[1][0], "he said \"hi\"");
}

TEST(CsvParse, NumericColumn) {
  const auto doc = parse_csv("t,p\n0,3.6\n0.001,4.286\n0.002,5.553\n");
  ASSERT_TRUE(doc.ok());
  const auto col = doc->numeric_column("p");
  ASSERT_TRUE(col.ok());
  ASSERT_EQ(col->size(), 3u);
  EXPECT_DOUBLE_EQ(col.value()[2], 5.553);
}

TEST(CsvParse, MissingColumn) {
  const auto doc = parse_csv("a,b\n1,2\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->column_index("c").ok());
  EXPECT_FALSE(doc->numeric_column("c").ok());
}

TEST(CsvParse, NonNumericField) {
  const auto doc = parse_csv("a\nhello\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->numeric_column("a").ok());
}

TEST(CsvParse, RowWidthMismatch) {
  EXPECT_FALSE(parse_csv("a,b\n1\n").ok());
}

TEST(CsvParse, CrLfLineEndings) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][1], "4");
}

TEST(CsvParse, UnterminatedQuote) {
  EXPECT_FALSE(parse_csv("a\n\"oops\n").ok());
}

TEST(CsvParse, Empty) { EXPECT_FALSE(parse_csv("").ok()); }

TEST(CsvParse, TrailingNewlinesIgnored) {
  const auto doc = parse_csv("a\n1\n\n\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows.size(), 1u);
}

}  // namespace
}  // namespace eefei
