#include "core/closed_form.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/biconvex.h"

namespace eefei::core {
namespace {

EnergyObjective reference_objective(double b1 = 0.381, double a1 = 0.005) {
  energy::ConvergenceConstants c = energy::paper_reference_constants();
  c.a1 = a1;
  const ConvergenceBound bound(c, 0.05);
  const double b0 = 7.79e-5 * 3000.0 + 3.34e-3;
  return EnergyObjective(bound, b0, b1, 20);
}

// Numeric 1-D minimum via golden section, for cross-validation.
double numeric_k_star(const EnergyObjective& obj, double e) {
  const auto k_min = obj.bound().min_feasible_servers(e).value();
  return golden_section_minimize(
      [&](double k) { return obj.value(k, e).value_or(1e18); },
      std::max(1.0, k_min * (1.0 + 1e-9)), static_cast<double>(obj.n()),
      1e-10);
}

double numeric_e_star(const EnergyObjective& obj, double k) {
  const double e_max = obj.bound().max_feasible_epochs(k).value();
  return golden_section_minimize(
      [&](double e) { return obj.value(k, e).value_or(1e18); }, 1.0,
      e_max * (1.0 - 1e-9), 1e-10);
}

TEST(KStar, IidReferenceGivesOne) {
  // With the IID-calibrated (small) A1, the paper's Fig. 5 conclusion:
  // K* = 1.
  const auto obj = reference_objective();
  const auto k = k_star(obj, 10.0);
  ASSERT_TRUE(k.ok());
  EXPECT_DOUBLE_EQ(k.value(), 1.0);
}

TEST(KStar, LargeVarianceMovesKStarInterior) {
  // Non-IID data ⇒ larger σ² ⇒ larger A1 ⇒ interior K* = 2A1/C1.
  const auto obj = reference_objective(0.381, 0.15);
  const auto k = k_star(obj, 10.0);
  ASSERT_TRUE(k.ok());
  const double c1 = 0.05 - 5.6e-4 * 9.0;
  EXPECT_NEAR(k.value(), 2.0 * 0.15 / c1, 1e-9);
  EXPECT_GT(k.value(), 1.0);
  EXPECT_LT(k.value(), 20.0);
}

TEST(KStar, ClampsToN) {
  // A1 = 0.6: the unconstrained 2A1/C1 exceeds N = 20, but A1/C1 < 20 keeps
  // the problem feasible, so the clamp lands on N.
  const auto obj = reference_objective(0.381, 0.6);
  const auto k = k_star(obj, 5.0);
  ASSERT_TRUE(k.ok());
  EXPECT_DOUBLE_EQ(k.value(), 20.0);
}

TEST(KStar, InfeasibleVarianceRejected) {
  // A1 = 2.0: even K = N cannot bring A1/K below epsilon.
  const auto obj = reference_objective(0.381, 2.0);
  EXPECT_FALSE(k_star(obj, 5.0).ok());
}

TEST(KStar, InfeasibleEpochsRejected) {
  const auto obj = reference_objective();
  EXPECT_FALSE(k_star(obj, 1e4).ok());
}

class KStarSweep : public ::testing::TestWithParam<double> {};

TEST_P(KStarSweep, MatchesNumericMinimizer) {
  const double a1 = GetParam();
  const auto obj = reference_objective(0.381, a1);
  for (const double e : {1.0, 5.0, 20.0, 50.0}) {
    const auto k = k_star(obj, e);
    if (!k.ok()) continue;
    const double numeric = numeric_k_star(obj, e);
    // Both clamped to the same box: compare objective values (flat regions
    // can make the argmin itself ambiguous).
    const double v_closed = obj.value(k.value(), e).value();
    const double v_numeric = obj.value(numeric, e).value();
    EXPECT_NEAR(v_closed, v_numeric, std::abs(v_numeric) * 1e-6)
        << "a1=" << a1 << " e=" << e;
  }
}

INSTANTIATE_TEST_SUITE_P(VarianceLevels, KStarSweep,
                         ::testing::Values(0.001, 0.005, 0.05, 0.15, 0.4));

TEST(EStarExact, MatchesNumericMinimizer) {
  for (const double b1 : {0.05, 0.381, 2.0, 10.0}) {
    const auto obj = reference_objective(b1);
    for (const double k : {1.0, 5.0, 10.0, 20.0}) {
      const auto e = e_star_exact(obj, k);
      ASSERT_TRUE(e.ok());
      const double numeric = numeric_e_star(obj, k);
      const double v_closed = obj.value(k, e.value()).value();
      const double v_numeric = obj.value(k, numeric).value();
      EXPECT_NEAR(v_closed, v_numeric, std::abs(v_numeric) * 1e-6)
          << "b1=" << b1 << " k=" << k;
    }
  }
}

TEST(EStarExact, IsStationaryPoint) {
  const auto obj = reference_objective();
  const auto e = e_star_exact(obj, 1.0);
  ASSERT_TRUE(e.ok());
  if (e.value() > 1.0) {  // interior
    EXPECT_NEAR(obj.d_de(1.0, e.value()), 0.0, 1e-6);
  }
}

TEST(EStarPaper, IsUpwardBiasedWhenB0Dominates) {
  // The printed Eq. 17 drops the B0·E² term, which biases E* upward when
  // computation (B0·E) dominates communication (B1).  Documented deviation.
  const auto obj = reference_objective(0.381);
  const auto exact = e_star_exact(obj, 1.0);
  const auto paper = e_star_paper(obj, 1.0);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(paper.ok());
  EXPECT_GT(paper.value(), exact.value());
  // With B0 → 0 the two coincide.
  const EnergyObjective comm_only(obj.bound(), 0.0, 0.381, 20);
  const auto exact0 = e_star_exact(comm_only, 1.0);
  const auto paper0 = e_star_paper(comm_only, 1.0);
  ASSERT_TRUE(exact0.ok());
  ASSERT_TRUE(paper0.ok());
  EXPECT_NEAR(exact0.value(), paper0.value(), 1e-6);
}

TEST(EStar, ClampedToOneWhenCommunicationFree) {
  // B1 = 0 (free communication): more epochs only burn compute, E* = 1.
  const auto obj_free = EnergyObjective(reference_objective().bound(),
                                        0.237, 1e-12, 20);
  const auto e = e_star_exact(obj_free, 1.0);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), 1.0, 0.51);
}

TEST(BestInteger, PicksTheBetterNeighbour) {
  const auto obj = reference_objective();
  const auto e_cont = e_star_exact(obj, 1.0).value();
  const auto e_int = best_integer_e(obj, 1.0, e_cont);
  ASSERT_TRUE(e_int.ok());
  const double floor_v =
      obj.value(1.0, std::floor(e_cont)).value_or(1e18);
  const double ceil_v = obj.value(1.0, std::ceil(e_cont)).value_or(1e18);
  const double chosen =
      obj.value(1.0, static_cast<double>(e_int.value())).value();
  EXPECT_LE(chosen, std::min(floor_v, ceil_v) + 1e-12);
}

TEST(BestInteger, KClampedToDomain) {
  const auto obj = reference_objective();
  const auto k = best_integer_k(obj, 0.2, 10.0);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value(), 1u);
  const auto k_hi = best_integer_k(obj, 99.0, 10.0);
  ASSERT_TRUE(k_hi.ok());
  EXPECT_EQ(k_hi.value(), 20u);
}

}  // namespace
}  // namespace eefei::core
