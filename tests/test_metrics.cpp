#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace eefei::ml {
namespace {

TEST(ConfusionMatrix, AccuracyAndCounts) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);  // one miss
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 4.0 / 5.0);
}

TEST(ConfusionMatrix, PrecisionRecallF1) {
  ConfusionMatrix cm(2);
  // class 1: TP=3, FP=1, FN=2.
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(0, 1);
  cm.add(1, 0);
  cm.add(1, 0);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 3.0 / 5.0);
  const double p = 0.75, r = 0.6;
  EXPECT_DOUBLE_EQ(cm.f1(1), 2 * p * r / (p + r));
}

TEST(ConfusionMatrix, ZeroDenominators) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  // Class 2 never appears: precision/recall/f1 = 0 by convention.
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrix, MacroF1) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, Merge) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(1, 0);
  b.add(1, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(1, 0), 1u);
  EXPECT_DOUBLE_EQ(a.accuracy(), 2.0 / 3.0);
}

TEST(ConfusionMatrix, EmptyAccuracyIsZero) {
  ConfusionMatrix cm(4);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(ConfusionMatrix, RenderContainsCounts) {
  ConfusionMatrix cm(2);
  cm.add(0, 1);
  const std::string s = cm.render();
  EXPECT_NE(s.find("truth\\pred"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

}  // namespace
}  // namespace eefei::ml
