#include "ml/activations.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace eefei::ml {
namespace {

TEST(Softmax, SumsToOne) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  softmax_inplace(v);
  double sum = 0;
  for (const double x : v) {
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Monotone: larger logit -> larger probability.
  EXPECT_LT(v[0], v[1]);
  EXPECT_LT(v[2], v[3]);
}

TEST(Softmax, NumericallyStableOnLargeLogits) {
  std::vector<double> v{1000.0, 1001.0, 999.0};
  softmax_inplace(v);
  double sum = 0;
  for (const double x : v) {
    EXPECT_TRUE(std::isfinite(x));
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Softmax, UniformOnEqualLogits) {
  std::vector<double> v(5, 3.0);
  softmax_inplace(v);
  for (const double x : v) EXPECT_NEAR(x, 0.2, 1e-12);
}

TEST(Softmax, ShiftInvariance) {
  std::vector<double> a{0.1, 0.7, -0.4};
  std::vector<double> b{100.1, 100.7, 99.6};
  softmax_inplace(a);
  softmax_inplace(b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Sigmoid, KnownValues) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
  EXPECT_NEAR(sigmoid(-2.0), 1.0 - sigmoid(2.0), 1e-15);
}

TEST(Sigmoid, SaturatesWithoutOverflow) {
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(SigmoidInplace, AppliesElementwise) {
  std::vector<double> v{0.0, 100.0, -100.0};
  sigmoid_inplace(v);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_NEAR(v[1], 1.0, 1e-12);
  EXPECT_NEAR(v[2], 0.0, 1e-12);
}

TEST(LogSumExp, MatchesDirectComputation) {
  const std::vector<double> v{0.5, -1.0, 2.0};
  double direct = 0;
  for (const double x : v) direct += std::exp(x);
  EXPECT_NEAR(log_sum_exp(v), std::log(direct), 1e-12);
}

TEST(LogSumExp, StableOnLargeValues) {
  const std::vector<double> v{1e4, 1e4 + 1.0};
  const double expected = 1e4 + std::log(1.0 + std::exp(1.0));
  EXPECT_NEAR(log_sum_exp(v), expected, 1e-8);
}

TEST(LogSumExp, EmptyIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_sum_exp({})));
}

}  // namespace
}  // namespace eefei::ml
