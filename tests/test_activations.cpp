#include "ml/activations.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace eefei::ml {
namespace {

TEST(Softmax, SumsToOne) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  softmax_inplace(v);
  double sum = 0;
  for (const double x : v) {
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Monotone: larger logit -> larger probability.
  EXPECT_LT(v[0], v[1]);
  EXPECT_LT(v[2], v[3]);
}

TEST(Softmax, NumericallyStableOnLargeLogits) {
  std::vector<double> v{1000.0, 1001.0, 999.0};
  softmax_inplace(v);
  double sum = 0;
  for (const double x : v) {
    EXPECT_TRUE(std::isfinite(x));
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Softmax, UniformOnEqualLogits) {
  std::vector<double> v(5, 3.0);
  softmax_inplace(v);
  for (const double x : v) EXPECT_NEAR(x, 0.2, 1e-12);
}

TEST(Softmax, ShiftInvariance) {
  std::vector<double> a{0.1, 0.7, -0.4};
  std::vector<double> b{100.1, 100.7, 99.6};
  softmax_inplace(a);
  softmax_inplace(b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Sigmoid, KnownValues) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
  EXPECT_NEAR(sigmoid(-2.0), 1.0 - sigmoid(2.0), 1e-15);
}

TEST(Sigmoid, SaturatesWithoutOverflow) {
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(SigmoidInplace, AppliesElementwise) {
  std::vector<double> v{0.0, 100.0, -100.0};
  sigmoid_inplace(v);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_NEAR(v[1], 1.0, 1e-12);
  EXPECT_NEAR(v[2], 0.0, 1e-12);
}

TEST(LogSumExp, MatchesDirectComputation) {
  const std::vector<double> v{0.5, -1.0, 2.0};
  double direct = 0;
  for (const double x : v) direct += std::exp(x);
  EXPECT_NEAR(log_sum_exp(v), std::log(direct), 1e-12);
}

TEST(LogSumExp, StableOnLargeValues) {
  const std::vector<double> v{1e4, 1e4 + 1.0};
  const double expected = 1e4 + std::log(1.0 + std::exp(1.0));
  EXPECT_NEAR(log_sum_exp(v), expected, 1e-8);
}

TEST(LogSumExp, EmptyIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_sum_exp({})));
}

// ---------------------------------------------------------------------------
// Bit-exact pins of the current activation outputs on edge-case inputs.
// These anchor the fused SIMD forward passes: the row kernels call these
// exact functions, so if any of these pins move, every golden model
// fingerprint moves with them.  Hexfloat literals record the precise bits
// produced by the canonical op order (max-shift, ascending-index exp/sum,
// multiply-by-reciprocal) under -ffp-contract=off.
// ---------------------------------------------------------------------------

TEST(Softmax, EqualLogitsPinExactFifth) {
  // exp(0) = 1 per lane, sum = 5, inv = 1.0/5.0, each prob = 1 * inv —
  // exactly the double literal 0.2.
  std::vector<double> v(5, 3.0);
  softmax_inplace(v);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, 0.2);
}

TEST(Softmax, SingleClassPinsExactOne) {
  std::vector<double> v{123.456};
  softmax_inplace(v);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
}

TEST(Softmax, LargePositiveRowPinsExactBits) {
  // exp(710) alone would overflow; the max-shift makes the row finite and
  // these exact bits are pinned.
  std::vector<double> v{710.0, 709.0, 708.0};
  softmax_inplace(v);
  EXPECT_DOUBLE_EQ(v[0], 0x1.549a766a0679p-1);
  EXPECT_DOUBLE_EQ(v[1], 0x1.f534335ca4bcep-3);
  EXPECT_DOUBLE_EQ(v[2], 0x1.70c3e5f682bd9p-4);
}

TEST(Softmax, LargeNegativeRowPinsExactBits) {
  // exp(-746) alone underflows to 0; shift-invariance means the bits equal
  // the +710 row above.
  std::vector<double> v{-745.0, -746.0, -747.0};
  softmax_inplace(v);
  EXPECT_DOUBLE_EQ(v[0], 0x1.549a766a0679p-1);
  EXPECT_DOUBLE_EQ(v[1], 0x1.f534335ca4bcep-3);
  EXPECT_DOUBLE_EQ(v[2], 0x1.70c3e5f682bd9p-4);
}

TEST(Softmax, MixedExtremeMagnitudesPinSaturatedRow) {
  // v − mx = −2e308 overflows to −inf, exp(−inf) = 0: the dominated class
  // is pinned at exactly 0, the max class at exactly 1.
  std::vector<double> v{1e308, -1e308};
  softmax_inplace(v);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(Sigmoid, ClampBoundaryPinsExactBits) {
  // The ±40 clamp saturates the positive side to exactly 1.0 (1 + exp(−40)
  // rounds to 1) while the negative side stays a tiny nonzero double.
  EXPECT_DOUBLE_EQ(sigmoid(40.0), 1.0);
  EXPECT_DOUBLE_EQ(sigmoid(-40.0), 0x1.39792499b1a24p-58);
  // Beyond the clamp the output is bit-identical to the boundary value.
  EXPECT_DOUBLE_EQ(sigmoid(41.0), sigmoid(40.0));
  EXPECT_DOUBLE_EQ(sigmoid(1e308), sigmoid(40.0));
  EXPECT_DOUBLE_EQ(sigmoid(-41.0), sigmoid(-40.0));
  EXPECT_DOUBLE_EQ(sigmoid(-1e308), sigmoid(-40.0));
}

TEST(LogSumExp, SingleElementPinsInputExactly) {
  // mx + log(exp(0)) = mx + 0.0 — returns the input bit-for-bit.
  const std::vector<double> v{0x1.23456789abcdep+3};
  EXPECT_DOUBLE_EQ(log_sum_exp(v), 0x1.23456789abcdep+3);
}

TEST(LogSumExp, LargeNegativeRowPinsExactBits) {
  const std::vector<double> v{-1000.0, -1001.0, -1002.0};
  EXPECT_DOUBLE_EQ(log_sum_exp(v), -0x1.f3cbd39158874p+9);
}

}  // namespace
}  // namespace eefei::ml
