// Multi-hop network substrate: the typed graph, the deterministic static
// router (tie-breaks pinned for tied shortest paths), and the bounded
// FIFO per-link queue whose admissions are a pure function of the
// time-ordered offer sequence.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "net/graph.h"
#include "net/link_queue.h"
#include "net/router.h"

namespace eefei::net {
namespace {

// --------------------------------------------------------------- NetGraph

TEST(NetGraph, NodesAndLinksGetConsecutiveIds) {
  NetGraph g;
  EXPECT_EQ(g.add_node(NodeKind::kGateway), 0u);
  EXPECT_EQ(g.add_node(NodeKind::kBackhaul), 1u);
  EXPECT_EQ(g.add_node(NodeKind::kCoordinator), 2u);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.node_kind(1), NodeKind::kBackhaul);

  const auto l0 = g.add_link(0, 1, LinkConfig{});
  const auto l1 = g.add_link(1, 2, LinkConfig{});
  const auto l2 = g.add_link(0, 2, LinkConfig{});
  ASSERT_TRUE(l0.ok());
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(*l0, 0u);
  EXPECT_EQ(*l1, 1u);
  EXPECT_EQ(*l2, 2u);
  EXPECT_EQ(g.num_links(), 3u);
  EXPECT_EQ(g.link(1).from, 1u);
  EXPECT_EQ(g.link(1).to, 2u);
  // Out-links come back in ascending link-id order.
  const std::vector<std::size_t> expected = {0u, 2u};
  EXPECT_EQ(g.out_links(0), expected);
  EXPECT_TRUE(g.out_links(2).empty());
}

TEST(NetGraph, RejectsBadLinks) {
  NetGraph g;
  (void)g.add_node(NodeKind::kGateway);
  (void)g.add_node(NodeKind::kCoordinator);
  EXPECT_FALSE(g.add_link(0, 7, LinkConfig{}).ok());  // endpoint range
  EXPECT_FALSE(g.add_link(9, 1, LinkConfig{}).ok());
  EXPECT_FALSE(g.add_link(0, 0, LinkConfig{}).ok());  // self-loop
  LinkConfig bad;
  bad.latency = Seconds{-0.5};
  EXPECT_FALSE(g.add_link(0, 1, bad).ok());  // invalid config
  EXPECT_EQ(g.num_links(), 0u);  // nothing leaked in
}

TEST(NetGraph, NodeKindNames) {
  EXPECT_STREQ(to_string(NodeKind::kDevice), "device");
  EXPECT_STREQ(to_string(NodeKind::kGateway), "gateway");
  EXPECT_STREQ(to_string(NodeKind::kBackhaul), "backhaul");
  EXPECT_STREQ(to_string(NodeKind::kCoordinator), "coordinator");
}

// -------------------------------------------------------------- LinkQueue

TEST(LinkQueue, DefaultConfigIsTransparent) {
  // rate 0 = infinite bandwidth, latency 0, unbounded: every offer is
  // admitted with zero wait and instant arrival — the configuration the
  // multi-hop golden-twin contract leans on.
  LinkQueue q{LinkConfig{}};
  for (int i = 0; i < 50; ++i) {
    const auto adm = q.offer(Seconds{0.1 * i}, Bytes{1e6});
    EXPECT_TRUE(adm.accepted);
    EXPECT_DOUBLE_EQ(adm.wait.value(), 0.0);
    EXPECT_DOUBLE_EQ(adm.depart.value(), 0.1 * i);
    EXPECT_DOUBLE_EQ(adm.arrive.value(), 0.1 * i);
  }
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_DOUBLE_EQ(q.stats().busy.value(), 0.0);
  EXPECT_DOUBLE_EQ(q.utilization(Seconds{5.0}), 0.0);
}

TEST(LinkQueue, SerializesFifoAndAccumulatesWait) {
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::from_mbps(8.0);  // 1000 bytes = 1 ms
  cfg.latency = Seconds::from_millis(2.0);
  LinkQueue q{cfg};

  // Three messages offered back-to-back at t = 0 serialize in order.
  const auto a = q.offer(Seconds{0.0}, Bytes{1000.0});
  const auto b = q.offer(Seconds{0.0}, Bytes{1000.0});
  const auto c = q.offer(Seconds{0.0}, Bytes{1000.0});
  EXPECT_DOUBLE_EQ(a.wait.value(), 0.0);
  EXPECT_NEAR(a.arrive.value(), 0.003, 1e-12);  // tx + latency
  EXPECT_NEAR(b.wait.value(), 0.001, 1e-12);    // behind a
  EXPECT_NEAR(b.arrive.value(), 0.004, 1e-12);
  EXPECT_NEAR(c.wait.value(), 0.002, 1e-12);    // behind a and b
  EXPECT_NEAR(c.arrive.value(), 0.005, 1e-12);
  EXPECT_EQ(c.depth, 3u);

  // A later offer after the backlog drained starts immediately.
  const auto d = q.offer(Seconds{0.01}, Bytes{1000.0});
  EXPECT_DOUBLE_EQ(d.wait.value(), 0.0);
  EXPECT_EQ(d.depth, 1u);  // the earlier three were purged

  EXPECT_EQ(q.stats().offered, 4u);
  EXPECT_EQ(q.stats().max_depth, 3u);
  EXPECT_NEAR(q.stats().busy.value(), 0.004, 1e-12);
  EXPECT_NEAR(q.stats().total_wait.value(), 0.003, 1e-12);
}

TEST(LinkQueue, BoundedQueueDropsWhenFullAndRecoversAfterDrain) {
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::from_mbps(8.0);
  cfg.queue_capacity = 2;
  LinkQueue q{cfg};

  EXPECT_TRUE(q.offer(Seconds{0.0}, Bytes{1000.0}).accepted);
  EXPECT_TRUE(q.offer(Seconds{0.0}, Bytes{1000.0}).accepted);
  const auto drop = q.offer(Seconds{0.0}, Bytes{1000.0});
  EXPECT_FALSE(drop.accepted);
  EXPECT_EQ(drop.depth, 2u);
  EXPECT_EQ(q.stats().dropped, 1u);

  // By t = 2 ms both pending messages finished serializing, so capacity
  // is free again.
  EXPECT_TRUE(q.offer(Seconds{0.002}, Bytes{1000.0}).accepted);
  EXPECT_EQ(q.stats().offered, 4u);
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(LinkQueue, UtilizationClampsAndHandlesZeroHorizon) {
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::from_mbps(8.0);
  LinkQueue q{cfg};
  (void)q.offer(Seconds{0.0}, Bytes{1000.0});  // 1 ms busy
  EXPECT_NEAR(q.utilization(Seconds{0.002}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(q.utilization(Seconds{0.0005}), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(q.utilization(Seconds{0.0}), 0.0);
  EXPECT_DOUBLE_EQ(q.utilization(Seconds{-1.0}), 0.0);
}

TEST(LinkQueue, ValidateRejectsNegativeRateAndLatency) {
  LinkConfig cfg;
  EXPECT_TRUE(cfg.validate().ok());
  cfg.rate = BitsPerSecond{-1.0};
  EXPECT_FALSE(cfg.validate().ok());
  cfg = LinkConfig{};
  cfg.latency = Seconds{-0.1};
  EXPECT_FALSE(cfg.validate().ok());
}

// ----------------------------------------------------------------- Router

TEST(Router, RoutesAlongLatencyShortestPath) {
  // 0 → 1 → 3 (1 ms + 1 ms) beats 0 → 2 → 3 (5 ms + 1 ms).
  NetGraph g;
  for (int i = 0; i < 4; ++i) (void)g.add_node(NodeKind::kBackhaul);
  LinkConfig fast;
  fast.latency = Seconds::from_millis(1.0);
  LinkConfig slow;
  slow.latency = Seconds::from_millis(5.0);
  const auto l01 = g.add_link(0, 1, fast);
  const auto l02 = g.add_link(0, 2, slow);
  const auto l13 = g.add_link(1, 3, fast);
  const auto l23 = g.add_link(2, 3, fast);
  ASSERT_TRUE(l01.ok() && l02.ok() && l13.ok() && l23.ok());

  Router r(&g);
  ASSERT_TRUE(r.add_destination(3).ok());
  EXPECT_EQ(r.next_link(0, 3), *l01);
  EXPECT_EQ(r.next_link(1, 3), *l13);
  EXPECT_EQ(r.next_link(2, 3), *l23);
  EXPECT_EQ(r.next_link(3, 3), Router::kNoRoute);  // already there

  const auto path = r.path(0, 3);
  ASSERT_TRUE(path.ok());
  const std::vector<std::size_t> expected = {*l01, *l13};
  EXPECT_EQ(*path, expected);
}

TEST(Router, FewerHopsBreakLatencyTies) {
  // All links zero-latency: 0 → 3 direct (1 hop) must beat 0 → 1 → 3.
  NetGraph g;
  for (int i = 0; i < 4; ++i) (void)g.add_node(NodeKind::kBackhaul);
  (void)g.add_link(0, 1, LinkConfig{});
  (void)g.add_link(1, 3, LinkConfig{});
  const auto direct = g.add_link(0, 3, LinkConfig{});
  ASSERT_TRUE(direct.ok());

  Router r(&g);
  ASSERT_TRUE(r.add_destination(3).ok());
  EXPECT_EQ(r.next_link(0, 3), *direct);
}

TEST(Router, TiedPathsPickSmallestNodeIdThenLinkId) {
  // Diamond with identical costs both ways.  Insertion order deliberately
  // gives the *higher* next-hop node the *lower* link id, so the test
  // distinguishes "smallest node id first" from "smallest link id first".
  NetGraph g;
  for (int i = 0; i < 4; ++i) (void)g.add_node(NodeKind::kBackhaul);
  const auto to_hi = g.add_link(0, 2, LinkConfig{});  // link 0 → node 2
  const auto to_lo = g.add_link(0, 1, LinkConfig{});  // link 1 → node 1
  (void)g.add_link(1, 3, LinkConfig{});
  (void)g.add_link(2, 3, LinkConfig{});
  ASSERT_TRUE(to_hi.ok() && to_lo.ok());

  Router r(&g);
  ASSERT_TRUE(r.add_destination(3).ok());
  EXPECT_EQ(r.next_link(0, 3), *to_lo);  // node 1 < node 2 wins

  // Parallel links to the same node: the smaller link id wins.
  NetGraph p;
  (void)p.add_node(NodeKind::kGateway);
  (void)p.add_node(NodeKind::kCoordinator);
  const auto first = p.add_link(0, 1, LinkConfig{});
  const auto second = p.add_link(0, 1, LinkConfig{});
  ASSERT_TRUE(first.ok() && second.ok());
  Router rp(&p);
  ASSERT_TRUE(rp.add_destination(1).ok());
  EXPECT_EQ(rp.next_link(0, 1), *first);
}

TEST(Router, UnreachableAndUnregisteredDestinations) {
  NetGraph g;
  (void)g.add_node(NodeKind::kGateway);
  (void)g.add_node(NodeKind::kCoordinator);
  (void)g.add_node(NodeKind::kGateway);  // isolated from 1
  const auto l = g.add_link(0, 1, LinkConfig{});
  ASSERT_TRUE(l.ok());

  Router r(&g);
  EXPECT_EQ(r.next_link(0, 1), Router::kNoRoute);  // not registered yet
  EXPECT_FALSE(r.path(0, 1).ok());
  ASSERT_TRUE(r.add_destination(1).ok());
  EXPECT_EQ(r.next_link(0, 1), *l);
  EXPECT_EQ(r.next_link(2, 1), Router::kNoRoute);  // unreachable
  EXPECT_FALSE(r.path(2, 1).ok());
  EXPECT_FALSE(r.add_destination(99).ok());  // out of range
}

// Property test: seeded random layered graphs with ALL-EQUAL latencies —
// the maximally-tied case.  Every next hop must (a) agree between two
// independently built routers, (b) strictly descend the BFS hop-distance
// toward the destination, and (c) go to the smallest-id node among the
// out-neighbors achieving that descent (the pinned tie-break), with the
// smallest link id among parallel links.  Together these imply the route
// from any node is unique and deterministic.
TEST(Router, PropertyTiedShortestPathsAreDeterministicAndUnique) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7919);
    NetGraph g;
    // 4 layers of up to 6 nodes funneling into one destination.
    std::vector<std::vector<std::size_t>> layers(4);
    for (auto& layer : layers) {
      const std::size_t width = 2 + rng.next() % 5;
      for (std::size_t i = 0; i < width; ++i) {
        layer.push_back(g.add_node(NodeKind::kBackhaul));
      }
    }
    const std::size_t dst = g.add_node(NodeKind::kCoordinator);
    for (std::size_t li = 0; li + 1 < layers.size(); ++li) {
      for (const std::size_t from : layers[li]) {
        // 1–3 random forward links (duplicates allowed: parallel links).
        const std::size_t fan = 1 + rng.next() % 3;
        for (std::size_t k = 0; k < fan; ++k) {
          const std::size_t to =
              layers[li + 1][rng.next() % layers[li + 1].size()];
          ASSERT_TRUE(g.add_link(from, to, LinkConfig{}).ok());
        }
      }
    }
    for (const std::size_t from : layers.back()) {
      ASSERT_TRUE(g.add_link(from, dst, LinkConfig{}).ok());
    }

    Router a(&g);
    Router b(&g);
    ASSERT_TRUE(a.add_destination(dst).ok());
    ASSERT_TRUE(b.add_destination(dst).ok());

    // Reference BFS hop distance to dst over reversed links.
    constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> hopdist(g.num_nodes(), kInf);
    hopdist[dst] = 0;
    for (bool changed = true; changed;) {  // Bellman-Ford on hop count
      changed = false;
      for (std::size_t l = 0; l < g.num_links(); ++l) {
        const GraphLink& link = g.link(l);
        if (hopdist[link.to] != kInf &&
            hopdist[link.to] + 1 < hopdist[link.from]) {
          hopdist[link.from] = hopdist[link.to] + 1;
          changed = true;
        }
      }
    }

    for (std::size_t node = 0; node < g.num_nodes(); ++node) {
      const std::size_t la = a.next_link(node, dst);
      ASSERT_EQ(la, b.next_link(node, dst)) << "seed " << seed;
      if (node == dst || hopdist[node] == kInf) {
        EXPECT_EQ(la, Router::kNoRoute);
        continue;
      }
      ASSERT_NE(la, Router::kNoRoute) << "seed " << seed;
      const GraphLink& chosen = g.link(la);
      // (b) strict descent toward dst.
      EXPECT_EQ(hopdist[chosen.to] + 1, hopdist[node]) << "seed " << seed;
      // (c) pinned tie-break among descending out-links.
      for (const std::size_t lid : g.out_links(node)) {
        const GraphLink& alt = g.link(lid);
        if (hopdist[alt.to] == kInf ||
            hopdist[alt.to] + 1 != hopdist[node]) {
          continue;
        }
        EXPECT_LE(chosen.to, alt.to) << "seed " << seed;
        if (alt.to == chosen.to) {
          EXPECT_LE(la, lid) << "seed " << seed;
        }
      }
      // The walked path terminates (uniqueness sanity).
      const auto path = a.path(node, dst);
      ASSERT_TRUE(path.ok()) << "seed " << seed;
      EXPECT_EQ(path->size(), hopdist[node]) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace eefei::net
