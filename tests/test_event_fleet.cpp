// Event-driven fleet engine: golden byte-identity against the pre-fleet
// FeiSystem fingerprint, equivalence with FleetEngine on every overlapping
// configuration (fault-free, jittered, CSMA, fault injection, N = 1k),
// thread-count invariance, the virtual-population contract, tier latency
// semantics, per-gateway contention determinism, and config validation.
#include "sim/event_fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "sim/fei_system.h"
#include "sim/fleet_engine.h"

namespace eefei::sim {
namespace {

// Same configuration and pre-fleet FeiSystem reference values as
// tests/test_fleet_engine.cpp (hexfloat: comparisons are bit-exact).  If
// these move, the simulation's physics changed — a regression, not a
// tolerance issue.
FeiSystemConfig golden_config() {
  FeiSystemConfig cfg = prototype_config();
  cfg.samples_per_server = 120;
  cfg.test_samples = 400;
  cfg.fl.clients_per_round = 10;
  cfg.fl.local_epochs = 5;
  cfg.fl.max_rounds = 8;
  cfg.fl.eval_every = 2;
  cfg.fl.target_accuracy = 2.0;  // unreachable: always runs all 8 rounds
  cfg.fl.threads = 4;
  cfg.seed = 3;
  return cfg;
}

constexpr double kGoldenLedgerTotal = 0x1.fe8f44bc615ffp+7;
constexpr double kGoldenWallClock = 0x1.850c37394590cp+3;
constexpr double kGoldenTimelineSum = 0x1.bcf4fb069b7bcp+9;
constexpr double kGoldenFinalAccuracy = 0x1.170a3d70a3d71p-1;
constexpr double kGoldenFinalLoss = 0x1.082c5a9bb4488p+1;

void expect_golden(const EventFleetRunResult& r) {
  EXPECT_EQ(r.training.rounds_run, 8u);
  EXPECT_EQ(r.ledger.total().value(), kGoldenLedgerTotal);
  EXPECT_EQ(r.wall_clock.value(), kGoldenWallClock);
  EXPECT_EQ(r.accumulated_energy().value(), kGoldenTimelineSum);
  EXPECT_EQ(r.training.record.last().test_accuracy, kGoldenFinalAccuracy);
  EXPECT_EQ(r.training.record.last().global_loss, kGoldenFinalLoss);
}

void expect_bitwise_equal(const FleetRunResult& a, const FleetRunResult& b,
                          std::size_t n_servers) {
  EXPECT_EQ(a.ledger.total().value(), b.ledger.total().value());
  EXPECT_EQ(a.wall_clock.value(), b.wall_clock.value());
  EXPECT_EQ(a.training.final_params, b.training.final_params);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_aborted_updates, b.total_aborted_updates);
  EXPECT_EQ(a.total_straggler_drops, b.total_straggler_drops);
  EXPECT_EQ(a.total_crashed_servers, b.total_crashed_servers);
  ASSERT_EQ(a.accumulators.size(), n_servers);
  ASSERT_EQ(b.accumulators.size(), n_servers);
  for (std::size_t sid = 0; sid < n_servers; ++sid) {
    EXPECT_EQ(a.ledger.server_total(sid).value(),
              b.ledger.server_total(sid).value())
        << "server " << sid;
    EXPECT_EQ(a.accumulators[sid].total_energy().value(),
              b.accumulators[sid].total_energy().value())
        << "server " << sid;
  }
}

TEST(EventFleetEngine, MatchesGoldenFingerprint) {
  EventFleetEngineConfig cfg;
  cfg.system = golden_config();
  cfg.sampled_timelines = 20;
  // Several gateways and regions (N = 20, fan-ins 4 and 2): the tier
  // completion chain runs for real, and with zero latencies it must not
  // move the clock by a single bit.
  cfg.tiers.gateway_fanin = 4;
  cfg.tiers.region_fanin = 2;
  EventFleetEngine engine(cfg);
  const auto r = engine.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  expect_golden(*r);
  EXPECT_EQ(r->num_gateways, 5u);
  EXPECT_EQ(r->num_regions, 3u);
  // Every selected server contributes at least download-done, epoch-done
  // and upload-done; tier completions come on top.
  EXPECT_GE(r->events_processed, 3u * 10u * 8u);

  for (std::size_t i = 0; i < r->sampled_servers.size(); ++i) {
    const std::size_t sid = r->sampled_servers[i];
    EXPECT_EQ(r->sampled_timelines[i].total_energy().value(),
              r->accumulators[sid].total_energy().value());
  }
}

// The queue-implementation switch is a pure performance knob: the binary
// heap reference must hit the identical golden fingerprint as the default
// calendar queue, and both must process the same number of events with the
// same peak depth.
TEST(EventFleetEngine, BinaryHeapQueueMatchesGoldenFingerprint) {
  EventFleetEngineConfig cal_cfg;
  cal_cfg.system = golden_config();
  cal_cfg.sampled_timelines = 20;
  cal_cfg.tiers.gateway_fanin = 4;
  cal_cfg.tiers.region_fanin = 2;
  EventFleetEngineConfig heap_cfg = cal_cfg;
  heap_cfg.event_queue = FleetQueueImpl::kBinaryHeap;
  EventFleetEngine cal_engine(cal_cfg);
  EventFleetEngine heap_engine(heap_cfg);
  const auto cal = cal_engine.run();
  const auto heap = heap_engine.run();
  ASSERT_TRUE(cal.ok()) << cal.error().message;
  ASSERT_TRUE(heap.ok()) << heap.error().message;
  expect_golden(*heap);
  EXPECT_EQ(heap->events_processed, cal->events_processed);
  EXPECT_EQ(heap->queue_high_water, cal->queue_high_water);
  EXPECT_EQ(heap->training.final_params, cal->training.final_params);
}

TEST(EventFleetEngine, ThreadCountInvariant) {
  EventFleetEngineConfig serial;
  serial.system = golden_config();
  serial.system.fl.threads = 1;
  serial.sampled_timelines = 20;
  serial.shard_size = 3;  // force many shards even at N = 20
  serial.tiers.gateway_fanin = 4;
  EventFleetEngine engine(serial);
  const auto r = engine.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  expect_golden(*r);
}

// The tentpole equivalence pin at scale: N = 1k with timing jitter and
// transient stragglers on, so the RNG streams are consumed for real — the
// event order must reproduce FleetEngine's sorted upload drain exactly.
TEST(EventFleetEngine, MatchesFleetEngineBitwiseAtN1k) {
  FeiSystemConfig sys = prototype_config();
  sys.num_servers = 1000;
  sys.net.num_edge_servers = 1000;
  sys.samples_per_server = 30;
  sys.test_samples = 200;
  sys.data.image_side = 12;
  sys.model.input_dim = 144;
  sys.sgd.learning_rate = 0.1;
  sys.fl.clients_per_round = 20;
  sys.fl.local_epochs = 2;
  sys.fl.max_rounds = 4;
  sys.fl.eval_every = 2;
  sys.fl.threads = 4;
  sys.timing_jitter = 0.05;
  sys.straggler_fraction = 0.2;
  sys.straggler_slowdown = 3.0;
  sys.charge_idle_servers = true;
  sys.seed = 17;

  FleetEngineConfig ref_cfg;
  ref_cfg.system = sys;
  ref_cfg.data_pool_shards = 50;
  FleetEngine reference(ref_cfg);
  const auto ref = reference.run();
  ASSERT_TRUE(ref.ok()) << ref.error().message;

  EventFleetEngineConfig cfg;
  cfg.system = sys;
  cfg.data_pool_shards = 50;
  cfg.tiers.gateway_fanin = 32;
  cfg.tiers.region_fanin = 8;
  EventFleetEngine engine(cfg);
  const auto r = engine.run();
  ASSERT_TRUE(r.ok()) << r.error().message;

  expect_bitwise_equal(*ref, *r, 1000);
}

TEST(EventFleetEngine, VirtualPopulationMatchesMaterialized) {
  FeiSystemConfig sys = prototype_config();
  sys.num_servers = 200;
  sys.net.num_edge_servers = 200;
  sys.samples_per_server = 40;
  sys.test_samples = 200;
  sys.data.image_side = 12;
  sys.model.input_dim = 144;
  sys.sgd.learning_rate = 0.1;
  sys.fl.clients_per_round = 12;
  sys.fl.local_epochs = 2;
  sys.fl.max_rounds = 3;
  sys.fl.threads = 4;
  sys.timing_jitter = 0.1;
  sys.charge_idle_servers = true;
  sys.seed = 5;

  EventFleetEngineConfig mat;
  mat.system = sys;
  mat.data_pool_shards = 16;
  EventFleetEngineConfig virt = mat;
  virt.virtual_population = true;

  EventFleetEngine ea(mat);
  EventFleetEngine eb(virt);
  const auto ra = ea.run();
  const auto rb = eb.run();
  ASSERT_TRUE(ra.ok()) << ra.error().message;
  ASSERT_TRUE(rb.ok()) << rb.error().message;
  expect_bitwise_equal(*ra, *rb, 200);
  EXPECT_EQ(ra->events_processed, rb->events_processed);
}

TEST(EventFleetEngine, CsmaContentionMatchesFleetEngine) {
  FeiSystemConfig sys = golden_config();
  sys.lan_contention = FeiSystemConfig::LanContention::kCsma;
  sys.timing_jitter = 0.05;  // upload jitter draws in completion order
  sys.fl.max_rounds = 4;

  FleetEngineConfig ref_cfg;
  ref_cfg.system = sys;
  FleetEngine reference(ref_cfg);
  const auto ref = reference.run();
  ASSERT_TRUE(ref.ok()) << ref.error().message;

  EventFleetEngineConfig cfg;
  cfg.system = sys;
  EventFleetEngine engine(cfg);
  const auto r = engine.run();
  ASSERT_TRUE(r.ok()) << r.error().message;

  // CSMA consumes a single shared RNG in upload-completion order; bit
  // equality proves the queue's (time, FIFO) order IS the sorted
  // (train_end, index) drain order.
  expect_bitwise_equal(*ref, *r, sys.num_servers);
}

FeiSystemConfig faulty_config() {
  FeiSystemConfig cfg = prototype_config();
  cfg.num_servers = 30;
  cfg.net.num_edge_servers = 30;
  cfg.samples_per_server = 60;
  cfg.test_samples = 200;
  cfg.data.image_side = 12;
  cfg.model.input_dim = 144;
  cfg.sgd.learning_rate = 0.1;
  cfg.fl.clients_per_round = 8;
  cfg.fl.local_epochs = 3;
  cfg.fl.max_rounds = 5;
  cfg.fl.overselect = 2;
  cfg.fl.threads = 4;
  cfg.net.link_faults.loss_probability = 0.2;
  cfg.net.link_faults.max_attempts = 3;
  cfg.round_deadline = Seconds{60.0};
  cfg.crashes.mtbf = Seconds{400.0};
  cfg.crashes.mttr = Seconds{20.0};
  cfg.charge_idle_servers = true;
  cfg.seed = 11;
  return cfg;
}

TEST(EventFleetEngine, FaultPathMatchesFleetEngine) {
  FleetEngineConfig ref_cfg;
  ref_cfg.system = faulty_config();
  FleetEngine reference(ref_cfg);
  const auto ref = reference.run();
  ASSERT_TRUE(ref.ok()) << ref.error().message;

  EventFleetEngineConfig cfg;
  cfg.system = faulty_config();
  cfg.tiers.gateway_fanin = 8;
  EventFleetEngine engine(cfg);
  const auto r = engine.run();
  ASSERT_TRUE(r.ok()) << r.error().message;

  expect_bitwise_equal(*ref, *r, 30);
  // The fault knobs actually fired (otherwise this proves nothing) —
  // crashes / drops resolve their aggregation tier instead of uploading.
  EXPECT_GT(r->total_retries + r->total_aborted_updates +
                r->total_straggler_drops + r->total_crashed_servers,
            0u);
}

TEST(EventFleetEngine, FaultPathThreadInvariant) {
  EventFleetEngineConfig a;
  a.system = faulty_config();
  a.tiers.gateway_fanin = 8;
  EventFleetEngineConfig b = a;
  b.system.fl.threads = 1;
  b.shard_size = 4;

  EventFleetEngine ea(a);
  EventFleetEngine eb(b);
  const auto ra = ea.run();
  const auto rb = eb.run();
  ASSERT_TRUE(ra.ok()) << ra.error().message;
  ASSERT_TRUE(rb.ok()) << rb.error().message;
  expect_bitwise_equal(*ra, *rb, 30);
  EXPECT_EQ(ra->events_processed, rb->events_processed);
}

TEST(EventFleetEngine, TierLatenciesExtendTheMakespan) {
  EventFleetEngineConfig base;
  base.system = golden_config();
  base.tiers.gateway_fanin = 4;
  base.tiers.region_fanin = 2;
  EventFleetEngineConfig slow = base;
  slow.gateway_latency = Seconds{0.5};
  slow.region_latency = Seconds{0.25};
  slow.root_latency = Seconds{0.25};

  EventFleetEngine ea(base);
  EventFleetEngine eb(slow);
  const auto ra = ea.run();
  const auto rb = eb.run();
  ASSERT_TRUE(ra.ok()) << ra.error().message;
  ASSERT_TRUE(rb.ok()) << rb.error().message;
  // Every round now ends at root-done, which trails the last upload by at
  // least the three hop latencies.
  EXPECT_GE(rb->wall_clock.value(),
            ra->wall_clock.value() + 8 * (0.5 + 0.25 + 0.25));
  // Aggregation latency idles servers longer but changes no phase energy:
  // training totals are unaffected.
  EXPECT_EQ(
      ra->ledger.category_total(energy::EnergyCategory::kTraining).value(),
      rb->ledger.category_total(energy::EnergyCategory::kTraining).value());
}

TEST(EventFleetEngine, GatewayContentionIsDeterministicAcrossThreads) {
  FeiSystemConfig sys = golden_config();
  sys.num_servers = 200;
  sys.net.num_edge_servers = 200;
  sys.samples_per_server = 40;
  sys.fl.clients_per_round = 40;
  sys.fl.max_rounds = 3;
  sys.timing_jitter = 0.05;
  sys.charge_idle_servers = true;

  EventFleetEngineConfig a;
  a.system = sys;
  a.tiers.gateway_fanin = 16;
  a.gateway_contention = true;
  EventFleetEngineConfig b = a;
  b.system.fl.threads = 1;

  EventFleetEngine ea(a);
  EventFleetEngine eb(b);
  const auto ra = ea.run();
  const auto rb = eb.run();
  ASSERT_TRUE(ra.ok()) << ra.error().message;
  ASSERT_TRUE(rb.ok()) << rb.error().message;
  expect_bitwise_equal(*ra, *rb, 200);
  EXPECT_EQ(ra->events_processed, rb->events_processed);

  // Per-gateway segments only queue uploads behind gateway-mates, so the
  // makespan cannot exceed the shared-medium run's.
  EventFleetEngineConfig shared = a;
  shared.gateway_contention = false;
  EventFleetEngine ec(shared);
  const auto rc = ec.run();
  ASSERT_TRUE(rc.ok()) << rc.error().message;
  EXPECT_LE(ra->wall_clock.value(), rc->wall_clock.value());
}

TEST(EventFleetEngine, ScalableSelectionRunsAndStaysUniform) {
  EventFleetEngineConfig cfg;
  cfg.system = golden_config();
  cfg.system.num_servers = 100;
  cfg.system.net.num_edge_servers = 100;
  cfg.system.fl.max_rounds = 4;
  cfg.data_pool_shards = 10;
  cfg.scalable_selection = true;
  EventFleetEngine engine(cfg);
  const auto r = engine.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r->training.rounds_run, 4u);
  for (const auto& rec : r->training.record.all()) {
    EXPECT_EQ(rec.selected.size(), 10u);
    std::set<std::size_t> distinct(rec.selected.begin(), rec.selected.end());
    EXPECT_EQ(distinct.size(), rec.selected.size());
    for (const auto sid : rec.selected) EXPECT_LT(sid, 100u);
  }
}

TEST(EventFleetEngine, PerServerAccumulatorsCanBeDisabled) {
  EventFleetEngineConfig cfg;
  cfg.system = golden_config();
  cfg.per_server_accumulators = false;
  EventFleetEngine engine(cfg);
  const auto r = engine.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_TRUE(r->accumulators.empty());
  // The ledger is accumulator-independent and still matches golden.
  EXPECT_EQ(r->ledger.total().value(), kGoldenLedgerTotal);
  EXPECT_EQ(r->wall_clock.value(), kGoldenWallClock);
}

TEST(EventFleetEngine, RejectsInvalidConfigs) {
  {  // gateway contention is FCFS-only
    EventFleetEngineConfig cfg;
    cfg.system = golden_config();
    cfg.system.lan_contention = FeiSystemConfig::LanContention::kCsma;
    cfg.gateway_contention = true;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
  {  // gateway contention + fault injection unsupported
    EventFleetEngineConfig cfg;
    cfg.system = faulty_config();
    cfg.gateway_contention = true;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
  {  // CSMA + faults rejected, like FleetEngine
    EventFleetEngineConfig cfg;
    cfg.system = faulty_config();
    cfg.system.lan_contention = FeiSystemConfig::LanContention::kCsma;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
  {  // virtual population requires data pooling
    EventFleetEngineConfig cfg;
    cfg.system = golden_config();
    cfg.virtual_population = true;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
  {  // ... and a loss-free LAN
    EventFleetEngineConfig cfg;
    cfg.system = golden_config();
    cfg.system.net.lan.loss_probability = 0.1;
    cfg.virtual_population = true;
    cfg.data_pool_shards = 4;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
  {  // ... and no per-device IoT collection
    EventFleetEngineConfig cfg;
    cfg.system = golden_config();
    cfg.system.iot_collection = true;
    cfg.virtual_population = true;
    cfg.data_pool_shards = 4;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
  {  // degenerate tier fan-in
    EventFleetEngineConfig cfg;
    cfg.system = golden_config();
    cfg.tiers.gateway_fanin = 0;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
}

// --- Multi-hop backhaul graph ---------------------------------------------

// The golden twin: zero-rate / zero-latency / unbounded links make every
// hop instantaneous, charge no energy and consume no RNG — the run must
// reproduce the point-to-point golden fingerprint bit for bit, while the
// hop chain demonstrably ran (two admissions per upload).
TEST(EventFleetEngine, MultiHopZeroConfigMatchesGoldenFingerprint) {
  EventFleetEngineConfig cfg;
  cfg.system = golden_config();
  cfg.sampled_timelines = 20;
  cfg.tiers.gateway_fanin = 4;
  cfg.tiers.region_fanin = 2;
  cfg.multi_hop = true;  // default LinkConfigs: transparent links
  EventFleetEngine engine(cfg);
  const auto r = engine.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  expect_golden(*r);
  // 5 gateways + 3 regions -> 5 gateway links + 3 backhaul links.
  EXPECT_EQ(r->num_links, 8u);
  // Every upload crosses gateway -> region -> coordinator: 2 admissions.
  EXPECT_EQ(r->link_messages, 10u * 8u * 2u);
  EXPECT_EQ(r->link_drops, 0u);
  EXPECT_EQ(r->link_wait.value(), 0.0);
  EXPECT_EQ(r->link_util_peak, 0.0);
}

// Bit-identity for any thread count at N = 1k, and the zero-config
// multi-hop run is byte-identical to the point-to-point engine on the
// same jittered / straggler-heavy configuration.
TEST(EventFleetEngine, MultiHopZeroConfigBitwiseTwinAtN1k) {
  FeiSystemConfig sys = prototype_config();
  sys.num_servers = 1000;
  sys.net.num_edge_servers = 1000;
  sys.samples_per_server = 30;
  sys.test_samples = 200;
  sys.data.image_side = 12;
  sys.model.input_dim = 144;
  sys.sgd.learning_rate = 0.1;
  sys.fl.clients_per_round = 20;
  sys.fl.local_epochs = 2;
  sys.fl.max_rounds = 4;
  sys.fl.eval_every = 2;
  sys.fl.threads = 4;
  sys.timing_jitter = 0.05;
  sys.straggler_fraction = 0.2;
  sys.straggler_slowdown = 3.0;
  sys.charge_idle_servers = true;
  sys.seed = 17;

  EventFleetEngineConfig plain;
  plain.system = sys;
  plain.data_pool_shards = 50;
  plain.tiers.gateway_fanin = 32;
  plain.tiers.region_fanin = 8;
  EventFleetEngine ref_engine(plain);
  const auto ref = ref_engine.run();
  ASSERT_TRUE(ref.ok()) << ref.error().message;

  EventFleetEngineConfig mh = plain;
  mh.multi_hop = true;
  EventFleetEngine e4(mh);
  const auto r4 = e4.run();
  ASSERT_TRUE(r4.ok()) << r4.error().message;

  EventFleetEngineConfig mh1 = mh;
  mh1.system.fl.threads = 1;
  mh1.shard_size = 64;
  EventFleetEngine e1(mh1);
  const auto r1 = e1.run();
  ASSERT_TRUE(r1.ok()) << r1.error().message;

  expect_bitwise_equal(*ref, *r4, 1000);
  expect_bitwise_equal(*r4, *r1, 1000);
  EXPECT_EQ(r4->events_processed, r1->events_processed);
  EXPECT_EQ(r4->link_messages, r1->link_messages);
  EXPECT_EQ(r4->link_wait.value(), 0.0);
  EXPECT_EQ(r4->link_messages, 20u * 4u * 2u);
}

// Congestion config: 8 gateways funneling into ONE region whose backhaul
// link is narrow — every upload serializes through it, so queueing delay
// emerges from the offered load.
EventFleetEngineConfig congested_config(std::size_t clients_per_round) {
  EventFleetEngineConfig cfg;
  cfg.system = prototype_config();
  cfg.system.num_servers = 64;
  cfg.system.net.num_edge_servers = 64;
  cfg.system.samples_per_server = 30;
  cfg.system.test_samples = 200;
  cfg.system.data.image_side = 12;
  cfg.system.model.input_dim = 144;
  cfg.system.sgd.learning_rate = 0.1;
  cfg.system.fl.clients_per_round = clients_per_round;
  cfg.system.fl.local_epochs = 2;
  cfg.system.fl.max_rounds = 3;
  cfg.system.fl.threads = 4;
  cfg.system.seed = 23;
  cfg.tiers.gateway_fanin = 8;
  cfg.tiers.region_fanin = 64;  // one region: a single backhaul bottleneck
  cfg.multi_hop = true;
  cfg.backhaul_uplink.rate = BitsPerSecond::from_mbps(0.2);
  return cfg;
}

TEST(EventFleetEngine, MultiHopCongestionGrowsWithOfferedLoad) {
  EventFleetEngine light(congested_config(8));
  EventFleetEngine heavy(congested_config(32));
  const auto rl = light.run();
  const auto rh = heavy.run();
  ASSERT_TRUE(rl.ok()) << rl.error().message;
  ASSERT_TRUE(rh.ok()) << rh.error().message;

  // The narrow link actually queued messages, and 4x the offered load
  // means more total waiting — congestion is emergent, not configured.
  EXPECT_GT(rl->link_wait.value(), 0.0);
  EXPECT_GT(rh->link_wait.value(), rl->link_wait.value());
  EXPECT_GT(rh->link_util_peak, 0.0);
  EXPECT_LE(rh->link_util_peak, 1.0);

  // The backhaul stretches the makespan relative to transparent links.
  EventFleetEngineConfig transparent = congested_config(32);
  transparent.backhaul_uplink = net::LinkConfig{};
  EventFleetEngine fast(transparent);
  const auto rf = fast.run();
  ASSERT_TRUE(rf.ok()) << rf.error().message;
  EXPECT_GT(rh->wall_clock.value(), rf->wall_clock.value());
  // ... but hops charge nothing: every energy category is bit-identical
  // except kWaiting, whose LAN queue-wait is a subtraction of absolute
  // event times — congestion shifts later rounds' absolute clock, so its
  // LOW BITS may round differently even though no hop books a joule.
  for (std::size_t c = 0; c < energy::kNumEnergyCategories; ++c) {
    const auto cat = static_cast<energy::EnergyCategory>(c);
    if (cat == energy::EnergyCategory::kWaiting) {
      EXPECT_NEAR(rh->ledger.category_total(cat).value(),
                  rf->ledger.category_total(cat).value(), 1e-9);
    } else {
      EXPECT_EQ(rh->ledger.category_total(cat).value(),
                rf->ledger.category_total(cat).value())
          << energy::to_string(cat);
    }
  }
  EXPECT_NEAR(rh->ledger.total().value(), rf->ledger.total().value(), 1e-9);
  EXPECT_EQ(rh->training.final_params, rf->training.final_params);
}

TEST(EventFleetEngine, MultiHopBoundedQueueDropsAreTimingOnly) {
  EventFleetEngineConfig bounded = congested_config(32);
  bounded.backhaul_uplink.queue_capacity = 2;
  EventFleetEngine eb(bounded);
  const auto rb = eb.run();
  ASSERT_TRUE(rb.ok()) << rb.error().message;
  EXPECT_GT(rb->link_drops, 0u);
  // Rounds still complete (a drop resolves the member at drop time) and
  // the numeric aggregation is untouched: same params as unbounded.
  EXPECT_EQ(rb->training.rounds_run, 3u);
  EventFleetEngine eu(congested_config(32));
  const auto ru = eu.run();
  ASSERT_TRUE(ru.ok()) << ru.error().message;
  EXPECT_EQ(rb->training.final_params, ru->training.final_params);
  // Same absolute-clock caveat as the congestion test: drops charge
  // nothing, but shifting round starts can move kWaiting's low bits.
  for (std::size_t c = 0; c < energy::kNumEnergyCategories; ++c) {
    const auto cat = static_cast<energy::EnergyCategory>(c);
    if (cat == energy::EnergyCategory::kWaiting) {
      EXPECT_NEAR(rb->ledger.category_total(cat).value(),
                  ru->ledger.category_total(cat).value(), 1e-9);
    } else {
      EXPECT_EQ(rb->ledger.category_total(cat).value(),
                ru->ledger.category_total(cat).value())
          << energy::to_string(cat);
    }
  }
  EXPECT_NEAR(rb->ledger.total().value(), ru->ledger.total().value(), 1e-9);
}

TEST(EventFleetEngine, MultiHopRejectsIncompatibleModes) {
  {  // CSMA access medium
    EventFleetEngineConfig cfg;
    cfg.system = golden_config();
    cfg.system.lan_contention = FeiSystemConfig::LanContention::kCsma;
    cfg.multi_hop = true;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
  {  // per-gateway contention is the other exclusive backhaul model
    EventFleetEngineConfig cfg;
    cfg.system = golden_config();
    cfg.multi_hop = true;
    cfg.gateway_contention = true;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
  {  // fault injection unsupported
    EventFleetEngineConfig cfg;
    cfg.system = faulty_config();
    cfg.multi_hop = true;
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
  {  // invalid link config caught at validation
    EventFleetEngineConfig cfg;
    cfg.system = golden_config();
    cfg.multi_hop = true;
    cfg.gateway_uplink.latency = Seconds{-1.0};
    EXPECT_FALSE(EventFleetEngine(cfg).run().ok());
  }
}

// Multi-hop telemetry: the link columns land in the round table, the
// per-hop wait sketch is registered, and totals reconcile with the run
// result — while recording perturbs nothing (same fingerprint bits as the
// untraced congested run).
TEST(EventFleetEngine, MultiHopTelemetryExportsLinkColumns) {
  EventFleetEngine untraced(congested_config(16));
  const auto ru = untraced.run();
  ASSERT_TRUE(ru.ok()) << ru.error().message;

  obs::Telemetry tel;
  EventFleetEngine engine(congested_config(16));
  const auto r = [&] {
    obs::TelemetryScope scope(tel);
    return engine.run();
  }();
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r->ledger.total().value(), ru->ledger.total().value());
  EXPECT_EQ(r->wall_clock.value(), ru->wall_clock.value());
  EXPECT_EQ(r->link_wait.value(), ru->link_wait.value());

  ASSERT_EQ(tel.rounds.size(), 3u);
  const auto rounds = tel.rounds.snapshot();
  const auto& msgs = *rounds.column("link_msgs");
  const auto& wait = *rounds.column("link_wait_s");
  const auto& util = *rounds.column("link_util_max");
  const auto& drops = *rounds.column("link_drops");
  double total_msgs = 0.0;
  double total_wait = 0.0;
  double total_drops = 0.0;
  double util_peak = 0.0;
  for (std::size_t i = 0; i < rounds.rows(); ++i) {
    total_msgs += msgs[i];
    total_wait += wait[i];
    total_drops += drops[i];
    util_peak = std::max(util_peak, util[i]);
    EXPECT_GE(util[i], 0.0);
    EXPECT_LE(util[i], 1.0);
  }
  EXPECT_EQ(total_msgs, static_cast<double>(r->link_messages));
  EXPECT_EQ(total_drops, static_cast<double>(r->link_drops));
  EXPECT_NEAR(total_wait, r->link_wait.value(),
              1e-9 * (1.0 + r->link_wait.value()));
  EXPECT_EQ(util_peak, r->link_util_peak);

  const auto metrics = tel.metrics.snapshot();
  EXPECT_EQ(metrics.gauge_value("fleet.links"),
            static_cast<double>(r->num_links));
  const auto* wait_sketch = metrics.sketch("fleet.link.wait_s");
  ASSERT_NE(wait_sketch, nullptr);
  EXPECT_EQ(wait_sketch->count, r->link_messages);
}

// The telemetry contract at fleet scale: tracing with *sampled* tracks must
// leave the simulation byte-identical (the golden fingerprint pins every
// result bit), keep the track count bounded by the sampler, fill the round
// table one row per round, and populate the first-class sketches.
TEST(EventFleetEngine, TracedRunIsGoldenWithBoundedSampledTracks) {
  EventFleetEngineConfig cfg;
  cfg.system = golden_config();
  cfg.sampled_timelines = 20;
  cfg.trace_tracks.max_tracks = 4;  // fewer tracks than mirrored timelines
  cfg.tiers.gateway_fanin = 4;
  cfg.tiers.region_fanin = 2;

  obs::Telemetry tel;
  EventFleetEngine engine(cfg);
  const auto r = [&] {
    obs::TelemetryScope scope(tel);
    return engine.run();
  }();
  ASSERT_TRUE(r.ok()) << r.error().message;
  expect_golden(*r);  // bit-for-bit the untraced result

  // The sampler bounds per-server lanes; coordinator/tier lanes stay on.
  std::size_t edge_tracks = 0;
  bool has_coordinator = false;
  for (const auto& [pid, name] : tel.tracer.track_names()) {
    if (name.rfind("edge_server_", 0) == 0) ++edge_tracks;
    if (name == "coordinator") has_coordinator = true;
  }
  EXPECT_EQ(edge_tracks, 4u);
  EXPECT_TRUE(has_coordinator);
  EXPECT_FALSE(tel.tracer.empty());

  // Round table: one row per round, radar-annotated.
  ASSERT_EQ(tel.rounds.size(), 8u);
  const auto rounds = tel.rounds.snapshot();
  const auto& selected = *rounds.column("selected");
  const auto& duration = *rounds.column("duration_s");
  for (std::size_t i = 0; i < rounds.rows(); ++i) {
    EXPECT_EQ(selected[i], 10.0) << "round " << i;
    EXPECT_GT(duration[i], 0.0) << "round " << i;
  }

  // First-class sketches: one round-time sample per round, one joules
  // sample per server (N = 20 is far below the sampling cap).
  const auto metrics = tel.metrics.snapshot();
  const auto* round_s = metrics.sketch("fleet.round.seconds");
  ASSERT_NE(round_s, nullptr);
  EXPECT_EQ(round_s->count, 8u);
  const auto* joules = metrics.sketch("fleet.server.joules");
  ASSERT_NE(joules, nullptr);
  EXPECT_EQ(joules->count, 20u);
  // The sketch saw exactly the per-server ledger totals (different
  // accumulation order, so a tight relative tolerance, not bitwise).
  double per_server_sum = 0.0;
  for (std::size_t sid = 0; sid < 20; ++sid) {
    per_server_sum += r->ledger.server_total(sid).value();
  }
  EXPECT_NEAR(joules->sum, per_server_sum, 1e-9 * per_server_sum);
  ASSERT_NE(metrics.sketch("fleet.upload.wait_s"), nullptr);
  ASSERT_NE(metrics.sketch("fleet.server.turnaround_s"), nullptr);
}

// max_tracks = 0 mutes every per-server lane but must not perturb the run
// or the round table.
TEST(EventFleetEngine, ZeroSampledTracksStillGoldenAndRecordsRounds) {
  EventFleetEngineConfig cfg;
  cfg.system = golden_config();
  cfg.sampled_timelines = 20;
  cfg.trace_tracks.max_tracks = 0;
  cfg.tiers.gateway_fanin = 4;
  cfg.tiers.region_fanin = 2;

  obs::Telemetry tel;
  EventFleetEngine engine(cfg);
  const auto r = [&] {
    obs::TelemetryScope scope(tel);
    return engine.run();
  }();
  ASSERT_TRUE(r.ok()) << r.error().message;
  expect_golden(*r);

  for (const auto& [pid, name] : tel.tracer.track_names()) {
    EXPECT_NE(name.rfind("edge_server_", 0), 0u) << name;
  }
  EXPECT_EQ(tel.rounds.size(), 8u);
}

// The joules sampling cap: with the cap forced below N the sketch must hold
// exactly ceil(N / stride) observations (stride bumped to odd), and the
// stride-sampled subset must still produce finite quantiles.
TEST(EventFleetEngine, JoulesSampleCapBoundsSketchObservations) {
  EventFleetEngineConfig cfg;
  cfg.system = golden_config();
  cfg.sampled_timelines = 8;
  cfg.joules_sample_cap = 6;  // N = 20 -> stride 3 (20/6 = 3, already odd)
  cfg.tiers.gateway_fanin = 4;

  obs::Telemetry tel;
  EventFleetEngine engine(cfg);
  const auto r = [&] {
    obs::TelemetryScope scope(tel);
    return engine.run();
  }();
  ASSERT_TRUE(r.ok()) << r.error().message;
  expect_golden(*r);  // the cap only changes what telemetry reads

  const auto metrics = tel.metrics.snapshot();
  const auto* joules = metrics.sketch("fleet.server.joules");
  ASSERT_NE(joules, nullptr);
  EXPECT_EQ(joules->count, 7u);  // ceil(20 / 3)
  EXPECT_GT(joules->quantile(0.5), 0.0);
  EXPECT_LE(joules->quantile(0.999), r->ledger.total().value());
}

}  // namespace
}  // namespace eefei::sim
