// Verifies the tentpole claim of the allocation-free hot path: once a
// model's workspace is warm, repeated loss_and_gradient / evaluate /
// predict calls perform ZERO heap allocations.  A counting global
// operator new provides the evidence; it is linked into this binary only.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "data/synth_digits.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/model_bank.h"
#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/fleet_event.h"
#include "sim/typed_event_queue.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Over-aligned flavours: AlignedVector (ml/aligned.h) allocates workspace
// and Matrix storage through these, so they must be counted too or the
// zero-allocation proof would silently skip every 64-byte-aligned tensor
// buffer.
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p =
          std::aligned_alloc(static_cast<std::size_t>(align),
                             (size + static_cast<std::size_t>(align) - 1) &
                                 ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace eefei::ml {
namespace {

data::Dataset make_batch(std::size_t n) {
  data::SynthDigitsConfig cfg;
  cfg.image_side = 12;
  cfg.seed = 31;
  data::SynthDigits gen(cfg);
  return gen.generate(n);
}

// Allocations across `iters` repetitions of fn, after one warm-up call.
template <typename F>
std::size_t steady_state_allocations(F&& fn, int iters = 10) {
  fn();  // warm-up: workspace buffers grow here
  const std::size_t before = g_allocations.load();
  for (int i = 0; i < iters; ++i) fn();
  return g_allocations.load() - before;
}

TEST(WorkspaceAlloc, LogisticRegressionHotPathIsAllocationFree) {
  const auto ds = make_batch(200);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  LogisticRegression model(cfg);
  std::vector<double> grad(model.parameter_count());

  EXPECT_EQ(0u, steady_state_allocations(
                    [&] { (void)model.loss_and_gradient(ds.view(), grad); }));
  EXPECT_EQ(0u, steady_state_allocations([&] { (void)model.evaluate(ds.view()); }));
  EXPECT_EQ(0u, steady_state_allocations([&] {
    (void)model.predict(ds.view().slice(0, 1).features);
  }));
}

TEST(WorkspaceAlloc, MlpHotPathIsAllocationFree) {
  const auto ds = make_batch(200);
  MlpConfig cfg;
  cfg.input_dim = 144;
  cfg.hidden_units = 32;
  Mlp model(cfg);
  std::vector<double> grad(model.parameter_count());

  EXPECT_EQ(0u, steady_state_allocations(
                    [&] { (void)model.loss_and_gradient(ds.view(), grad); }));
  EXPECT_EQ(0u, steady_state_allocations([&] { (void)model.evaluate(ds.view()); }));
}

TEST(WorkspaceAlloc, ExplicitWorkspaceIsAllocationFreeOnceWarm) {
  const auto ds = make_batch(128);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  LogisticRegression model(cfg);
  std::vector<double> grad(model.parameter_count());
  Workspace ws;

  EXPECT_EQ(0u, steady_state_allocations([&] {
    (void)model.loss_and_gradient(ds.view(), grad, ws);
    (void)model.evaluate_sums(ds.view(), ws);
  }));
}

TEST(WorkspaceAlloc, ModelBankSteadyStateTrainingIsAllocationFree) {
  // The batched fleet hot loop: once the arenas are warm from one round,
  // repeated rounds of the same shape (re-pack, K model slots, every
  // epoch's batched passes) must not touch the heap.
  const auto ds = make_batch(160);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  ModelBank bank;
  bank.configure(cfg);
  const std::vector<double> global(144 * 10 + 10, 0.05);
  constexpr std::size_t kModels = 4;
  std::vector<ModelBank::Task> tasks(kModels);
  for (std::size_t i = 0; i < kModels; ++i) {
    tasks[i].batch = ds.view().slice(i * 40, 40 - 3 * i);  // ragged n_k
    tasks[i].epochs = 2;
    tasks[i].learning_rate = 0.05;
  }
  EXPECT_EQ(0u, steady_state_allocations(
                    [&] { bank.train(global, tasks); }));
}

TEST(WorkspaceAlloc, GrowingBatchReallocatesOnlyOnGrowth) {
  const auto big = make_batch(256);
  const auto small = big.view().slice(0, 64);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  LogisticRegression model(cfg);
  Workspace ws;

  (void)model.evaluate_sums(big.view(), ws);  // warm at the largest size
  const std::size_t before = g_allocations.load();
  (void)model.evaluate_sums(small, ws);       // shrink: reuse, no realloc
  (void)model.evaluate_sums(big.view(), ws);  // back to max: still warm
  EXPECT_EQ(0u, g_allocations.load() - before);
}

}  // namespace
}  // namespace eefei::ml

namespace eefei::sim {
namespace {

using ml::steady_state_allocations;

TEST(WorkspaceAlloc, EventQueueScheduleAndRunAreAllocationFree) {
  // Regression: run() used to copy the std::function handler out of
  // priority_queue::top() — one heap allocation per event in the hottest
  // sim loop.  With the move-out heap and a warm backing vector, an entire
  // schedule/run cycle with small (SBO-sized) handlers allocates nothing.
  EventQueue queue;
  queue.reserve(64);
  std::size_t fired = 0;
  auto drive = [&] {
    for (int i = 0; i < 32; ++i) {
      queue.schedule_in(Seconds{1e-3 * static_cast<double>(i % 7)},
                        [&fired] { ++fired; });
    }
    (void)queue.run();
  };
  EXPECT_EQ(0u, steady_state_allocations(drive));
  EXPECT_GT(fired, 0u);
}

TEST(WorkspaceAlloc, EventQueueCascadeIsAllocationFree) {
  // Handlers scheduling follow-up events (the download→train→upload
  // cascade shape) stay allocation-free too: every handler captures one
  // pointer, comfortably inside std::function's small-buffer optimisation.
  EventQueue queue;
  queue.reserve(16);
  struct Cascade {
    EventQueue* q;
    std::size_t depth = 0;
    void fire() {
      if (++depth % 8 != 0) q->schedule_in(Seconds{0.5}, [this] { fire(); });
    }
  };
  Cascade cascade{&queue};
  EXPECT_EQ(0u, steady_state_allocations([&cascade, &queue] {
    queue.schedule_in(Seconds{0.1}, [&cascade] { cascade.fire(); });
    (void)queue.run();
  }));
  EXPECT_GT(cascade.depth, 0u);
}

// The typed-path satellite pin: a warmed-up event-fleet ROUND LOOP —
// N = 1k fleet, faults on, so the dispatch fans across download/train/
// upload chains, fault outcomes, deadline drops and tier completions —
// schedules and runs with ZERO steady-state allocations.  FleetEvent is a
// 40-byte POD (nothing to box, unlike std::function), and both typed
// queues only grow their backing storage, so after one warm-up round the
// per-round schedule/drain cycle never touches the heap.  This is the
// structural win of the typed path: the closure queue allocates whenever a
// capture list outgrows the SBO slot, which at fleet scale is every event
// that captures more than two words.
template <class Q>
std::size_t typed_fleet_round_loop_allocations() {
  constexpr std::size_t kServers = 1000;
  constexpr std::size_t kSelected = 100;  // K per round
  Q queue;
  queue.reserve(4 * kSelected);
  std::size_t fired = 0;
  Seconds round_start{0.0};

  // One round: K per-server chains (download → E epochs → upload), every
  // 7th server a fault chain (download cut → retry → crash or deadline
  // drop), plus the tier completion events — the engine's event shapes,
  // with the same re-entrant schedule-from-dispatch structure.
  auto dispatch = [&](const FleetEvent& ev, Seconds at) {
    ++fired;
    switch (ev.kind) {
      case FleetEventKind::kDownloadDone: {
        FleetEvent next;
        next.kind = FleetEventKind::kEpochDone;
        next.a = ev.a;
        next.t0 = at;
        queue.schedule_at(at + Seconds{0.01 + 1e-5 * (ev.a % 13)}, next);
        break;
      }
      case FleetEventKind::kEpochDone: {
        FleetEvent next;
        next.kind = FleetEventKind::kUploadDone;
        next.a = ev.a;
        next.t0 = at;
        queue.schedule_at(at + Seconds{0.02}, next);  // equal-time ties
        break;
      }
      case FleetEventKind::kFaultDownloadCut: {
        FleetEvent retry;
        retry.kind = (ev.a % 3 == 0) ? FleetEventKind::kFaultTrainCrash
                                     : FleetEventKind::kFaultDeadlineDrop;
        retry.a = ev.a;
        retry.t0 = at;
        queue.schedule_at(at + Seconds{0.005}, retry);
        break;
      }
      default:
        break;  // chain terminals: upload done, faults resolved, tiers
    }
  };

  auto round = [&] {
    for (std::size_t i = 0; i < kSelected; ++i) {
      const std::uint32_t sid =
          static_cast<std::uint32_t>((i * 97) % kServers);
      FleetEvent ev;
      ev.kind = (sid % 7 == 0) ? FleetEventKind::kFaultDownloadCut
                               : FleetEventKind::kDownloadDone;
      ev.a = sid;
      queue.schedule_at(round_start + Seconds{1e-4 * (sid % 29)}, ev);
    }
    FleetEvent root;
    root.kind = FleetEventKind::kRootDone;
    queue.schedule_at(round_start + Seconds{0.5}, root);
    queue.reset_high_water();  // the per-round telemetry window
    (void)queue.run(dispatch);
    round_start = queue.now();
  };

  // The calendar queue re-derives its bucket window from each round's
  // event times; a handful of rounds discover the worst-case bucket
  // occupancies (grow-only storage), after which the cycle is warm.
  for (int i = 0; i < 8; ++i) round();
  return steady_state_allocations(round);
}

TEST(WorkspaceAlloc, FleetEventCalendarRoundLoopIsAllocationFree) {
  EXPECT_EQ(0u, typed_fleet_round_loop_allocations<
                    CalendarQueue<FleetEvent>>());
}

TEST(WorkspaceAlloc, FleetEventBinaryHeapRoundLoopIsAllocationFree) {
  EXPECT_EQ(0u, typed_fleet_round_loop_allocations<
                    TypedEventQueue<FleetEvent>>());
}

}  // namespace
}  // namespace eefei::sim
