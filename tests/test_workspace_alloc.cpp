// Verifies the tentpole claim of the allocation-free hot path: once a
// model's workspace is warm, repeated loss_and_gradient / evaluate /
// predict calls perform ZERO heap allocations.  A counting global
// operator new provides the evidence; it is linked into this binary only.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "data/synth_digits.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/model_bank.h"
#include "sim/event_queue.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Over-aligned flavours: AlignedVector (ml/aligned.h) allocates workspace
// and Matrix storage through these, so they must be counted too or the
// zero-allocation proof would silently skip every 64-byte-aligned tensor
// buffer.
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p =
          std::aligned_alloc(static_cast<std::size_t>(align),
                             (size + static_cast<std::size_t>(align) - 1) &
                                 ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace eefei::ml {
namespace {

data::Dataset make_batch(std::size_t n) {
  data::SynthDigitsConfig cfg;
  cfg.image_side = 12;
  cfg.seed = 31;
  data::SynthDigits gen(cfg);
  return gen.generate(n);
}

// Allocations across `iters` repetitions of fn, after one warm-up call.
template <typename F>
std::size_t steady_state_allocations(F&& fn, int iters = 10) {
  fn();  // warm-up: workspace buffers grow here
  const std::size_t before = g_allocations.load();
  for (int i = 0; i < iters; ++i) fn();
  return g_allocations.load() - before;
}

TEST(WorkspaceAlloc, LogisticRegressionHotPathIsAllocationFree) {
  const auto ds = make_batch(200);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  LogisticRegression model(cfg);
  std::vector<double> grad(model.parameter_count());

  EXPECT_EQ(0u, steady_state_allocations(
                    [&] { (void)model.loss_and_gradient(ds.view(), grad); }));
  EXPECT_EQ(0u, steady_state_allocations([&] { (void)model.evaluate(ds.view()); }));
  EXPECT_EQ(0u, steady_state_allocations([&] {
    (void)model.predict(ds.view().slice(0, 1).features);
  }));
}

TEST(WorkspaceAlloc, MlpHotPathIsAllocationFree) {
  const auto ds = make_batch(200);
  MlpConfig cfg;
  cfg.input_dim = 144;
  cfg.hidden_units = 32;
  Mlp model(cfg);
  std::vector<double> grad(model.parameter_count());

  EXPECT_EQ(0u, steady_state_allocations(
                    [&] { (void)model.loss_and_gradient(ds.view(), grad); }));
  EXPECT_EQ(0u, steady_state_allocations([&] { (void)model.evaluate(ds.view()); }));
}

TEST(WorkspaceAlloc, ExplicitWorkspaceIsAllocationFreeOnceWarm) {
  const auto ds = make_batch(128);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  LogisticRegression model(cfg);
  std::vector<double> grad(model.parameter_count());
  Workspace ws;

  EXPECT_EQ(0u, steady_state_allocations([&] {
    (void)model.loss_and_gradient(ds.view(), grad, ws);
    (void)model.evaluate_sums(ds.view(), ws);
  }));
}

TEST(WorkspaceAlloc, ModelBankSteadyStateTrainingIsAllocationFree) {
  // The batched fleet hot loop: once the arenas are warm from one round,
  // repeated rounds of the same shape (re-pack, K model slots, every
  // epoch's batched passes) must not touch the heap.
  const auto ds = make_batch(160);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  ModelBank bank;
  bank.configure(cfg);
  const std::vector<double> global(144 * 10 + 10, 0.05);
  constexpr std::size_t kModels = 4;
  std::vector<ModelBank::Task> tasks(kModels);
  for (std::size_t i = 0; i < kModels; ++i) {
    tasks[i].batch = ds.view().slice(i * 40, 40 - 3 * i);  // ragged n_k
    tasks[i].epochs = 2;
    tasks[i].learning_rate = 0.05;
  }
  EXPECT_EQ(0u, steady_state_allocations(
                    [&] { bank.train(global, tasks); }));
}

TEST(WorkspaceAlloc, GrowingBatchReallocatesOnlyOnGrowth) {
  const auto big = make_batch(256);
  const auto small = big.view().slice(0, 64);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  LogisticRegression model(cfg);
  Workspace ws;

  (void)model.evaluate_sums(big.view(), ws);  // warm at the largest size
  const std::size_t before = g_allocations.load();
  (void)model.evaluate_sums(small, ws);       // shrink: reuse, no realloc
  (void)model.evaluate_sums(big.view(), ws);  // back to max: still warm
  EXPECT_EQ(0u, g_allocations.load() - before);
}

}  // namespace
}  // namespace eefei::ml

namespace eefei::sim {
namespace {

using ml::steady_state_allocations;

TEST(WorkspaceAlloc, EventQueueScheduleAndRunAreAllocationFree) {
  // Regression: run() used to copy the std::function handler out of
  // priority_queue::top() — one heap allocation per event in the hottest
  // sim loop.  With the move-out heap and a warm backing vector, an entire
  // schedule/run cycle with small (SBO-sized) handlers allocates nothing.
  EventQueue queue;
  queue.reserve(64);
  std::size_t fired = 0;
  auto drive = [&] {
    for (int i = 0; i < 32; ++i) {
      queue.schedule_in(Seconds{1e-3 * static_cast<double>(i % 7)},
                        [&fired] { ++fired; });
    }
    (void)queue.run();
  };
  EXPECT_EQ(0u, steady_state_allocations(drive));
  EXPECT_GT(fired, 0u);
}

TEST(WorkspaceAlloc, EventQueueCascadeIsAllocationFree) {
  // Handlers scheduling follow-up events (the download→train→upload
  // cascade shape) stay allocation-free too: every handler captures one
  // pointer, comfortably inside std::function's small-buffer optimisation.
  EventQueue queue;
  queue.reserve(16);
  struct Cascade {
    EventQueue* q;
    std::size_t depth = 0;
    void fire() {
      if (++depth % 8 != 0) q->schedule_in(Seconds{0.5}, [this] { fire(); });
    }
  };
  Cascade cascade{&queue};
  EXPECT_EQ(0u, steady_state_allocations([&cascade, &queue] {
    queue.schedule_in(Seconds{0.1}, [&cascade] { cascade.fire(); });
    (void)queue.run();
  }));
  EXPECT_GT(cascade.depth, 0u);
}

}  // namespace
}  // namespace eefei::sim
