// Verifies the tentpole claim of the allocation-free hot path: once a
// model's workspace is warm, repeated loss_and_gradient / evaluate /
// predict calls perform ZERO heap allocations.  A counting global
// operator new provides the evidence; it is linked into this binary only.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "data/synth_digits.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eefei::ml {
namespace {

data::Dataset make_batch(std::size_t n) {
  data::SynthDigitsConfig cfg;
  cfg.image_side = 12;
  cfg.seed = 31;
  data::SynthDigits gen(cfg);
  return gen.generate(n);
}

// Allocations across `iters` repetitions of fn, after one warm-up call.
template <typename F>
std::size_t steady_state_allocations(F&& fn, int iters = 10) {
  fn();  // warm-up: workspace buffers grow here
  const std::size_t before = g_allocations.load();
  for (int i = 0; i < iters; ++i) fn();
  return g_allocations.load() - before;
}

TEST(WorkspaceAlloc, LogisticRegressionHotPathIsAllocationFree) {
  const auto ds = make_batch(200);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  LogisticRegression model(cfg);
  std::vector<double> grad(model.parameter_count());

  EXPECT_EQ(0u, steady_state_allocations(
                    [&] { (void)model.loss_and_gradient(ds.view(), grad); }));
  EXPECT_EQ(0u, steady_state_allocations([&] { (void)model.evaluate(ds.view()); }));
  EXPECT_EQ(0u, steady_state_allocations([&] {
    (void)model.predict(ds.view().slice(0, 1).features);
  }));
}

TEST(WorkspaceAlloc, MlpHotPathIsAllocationFree) {
  const auto ds = make_batch(200);
  MlpConfig cfg;
  cfg.input_dim = 144;
  cfg.hidden_units = 32;
  Mlp model(cfg);
  std::vector<double> grad(model.parameter_count());

  EXPECT_EQ(0u, steady_state_allocations(
                    [&] { (void)model.loss_and_gradient(ds.view(), grad); }));
  EXPECT_EQ(0u, steady_state_allocations([&] { (void)model.evaluate(ds.view()); }));
}

TEST(WorkspaceAlloc, ExplicitWorkspaceIsAllocationFreeOnceWarm) {
  const auto ds = make_batch(128);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  LogisticRegression model(cfg);
  std::vector<double> grad(model.parameter_count());
  Workspace ws;

  EXPECT_EQ(0u, steady_state_allocations([&] {
    (void)model.loss_and_gradient(ds.view(), grad, ws);
    (void)model.evaluate_sums(ds.view(), ws);
  }));
}

TEST(WorkspaceAlloc, GrowingBatchReallocatesOnlyOnGrowth) {
  const auto big = make_batch(256);
  const auto small = big.view().slice(0, 64);
  LogisticRegressionConfig cfg;
  cfg.input_dim = 144;
  LogisticRegression model(cfg);
  Workspace ws;

  (void)model.evaluate_sums(big.view(), ws);  // warm at the largest size
  const std::size_t before = g_allocations.load();
  (void)model.evaluate_sums(small, ws);       // shrink: reuse, no realloc
  (void)model.evaluate_sums(big.view(), ws);  // back to max: still warm
  EXPECT_EQ(0u, g_allocations.load() - before);
}

}  // namespace
}  // namespace eefei::ml
