#include "energy/trace_analysis.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eefei::energy {
namespace {

PowerStateTimeline four_step_timeline() {
  PowerStateTimeline tl;
  tl.push(EdgeState::kWaiting, Seconds{0.3});
  tl.push(EdgeState::kDownloading, Seconds{0.1});
  tl.push(EdgeState::kTraining, Seconds{1.2});
  tl.push(EdgeState::kUploading, Seconds{0.15});
  tl.push(EdgeState::kWaiting, Seconds{0.2});
  return tl;
}

TEST(SegmentTrace, RecoversCleanSteps) {
  const auto tl = four_step_timeline();
  PowerMeter meter{MeterConfig{}};
  const auto trace = meter.capture(tl);
  const auto segments = segment_trace(trace, tl.profile());
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 5u);
  const EdgeState expected[] = {EdgeState::kWaiting, EdgeState::kDownloading,
                                EdgeState::kTraining, EdgeState::kUploading,
                                EdgeState::kWaiting};
  const double durations[] = {0.3, 0.1, 1.2, 0.15, 0.2};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(segments.value()[i].state, expected[i]) << "segment " << i;
    EXPECT_NEAR(segments.value()[i].duration.value(), durations[i], 0.01)
        << "segment " << i;
  }
}

TEST(SegmentTrace, RobustToMeterNoise) {
  const auto tl = four_step_timeline();
  MeterConfig mcfg;
  mcfg.noise_stddev_watts = 0.06;
  mcfg.seed = 5;
  PowerMeter meter(mcfg);
  const auto trace = meter.capture(tl);
  const auto segments = segment_trace(trace, tl.profile());
  ASSERT_TRUE(segments.ok());
  // Noise may fragment steps slightly, but the classified state sequence
  // after coalescing must still be the 5-step pattern.
  ASSERT_EQ(segments->size(), 5u);
  EXPECT_EQ(segments.value()[2].state, EdgeState::kTraining);
  EXPECT_NEAR(segments.value()[2].mean_power.value(), 5.553, 0.05);
  EXPECT_NEAR(segments.value()[2].duration.value(), 1.2, 0.03);
}

TEST(SegmentTrace, EmptyTraceRejected) {
  const PowerTrace empty;
  EXPECT_FALSE(segment_trace(empty, DevicePowerProfile{}).ok());
}

TEST(SegmentTrace, SingleStateTrace) {
  PowerStateTimeline tl;
  tl.push(EdgeState::kTraining, Seconds{0.5});
  PowerMeter meter{MeterConfig{}};
  const auto segments = segment_trace(meter.capture(tl), tl.profile());
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_EQ(segments->front().state, EdgeState::kTraining);
}

TEST(SummarizeSegments, PerStateAggregates) {
  const auto tl = four_step_timeline();
  PowerMeter meter{MeterConfig{}};
  const auto segments = segment_trace(meter.capture(tl), tl.profile());
  ASSERT_TRUE(segments.ok());
  const auto stats = summarize_segments(segments.value());
  ASSERT_EQ(stats.size(), kNumEdgeStates);
  const auto& waiting = stats[static_cast<std::size_t>(EdgeState::kWaiting)];
  EXPECT_EQ(waiting.occurrences, 2u);
  EXPECT_NEAR(waiting.total_time.value(), 0.5, 0.02);
  EXPECT_NEAR(waiting.mean_power.value(), 3.6, 0.02);
  const auto& train = stats[static_cast<std::size_t>(EdgeState::kTraining)];
  EXPECT_EQ(train.occurrences, 1u);
  EXPECT_NEAR(train.total_energy.value(), 5.553 * 1.2, 0.1);
}

TEST(TrainingDurations, ExtractsOnlyTrainingSegments) {
  const auto tl = four_step_timeline();
  PowerMeter meter{MeterConfig{}};
  const auto segments = segment_trace(meter.capture(tl), tl.profile());
  ASSERT_TRUE(segments.ok());
  const auto obs = training_durations(segments.value(), 40, 1000);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].epochs, 40u);
  EXPECT_EQ(obs[0].samples, 1000u);
  EXPECT_NEAR(obs[0].duration.value(), 1.2, 0.01);
}

// The §VI-B pipeline end-to-end: meter → segment → extract → fit, and the
// recovered (c0, c1) must match the ground-truth timing model that
// generated the traces.
TEST(CalibrateFromTraces, RecoversGroundTruthCoefficients) {
  const TrainingTimeModel truth;  // the Pi's calibrated model
  const std::vector<std::pair<std::size_t, std::size_t>> grid = {
      {10, 100}, {10, 500}, {10, 1000}, {10, 2000},
      {20, 100}, {20, 500}, {20, 1000}, {20, 2000},
      {40, 100}, {40, 500}, {40, 1000}, {40, 2000},
  };
  MeterConfig mcfg;  // clean 1 kHz meter
  const auto result = calibrate_from_traces(grid, truth,
                                            DevicePowerProfile{}, mcfg);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result->observations.size(), grid.size());
  // 1 kHz quantization limits precision to ~1 ms per measurement; the
  // least-squares fit over 12 points recovers c0 within ~3%.
  EXPECT_NEAR(result->fit.energy.c0, 7.79e-5, 3e-6);
  EXPECT_GT(result->fit.r_squared, 0.99);
}

TEST(CalibrateFromTraces, WorksWithNoisyMeter) {
  const TrainingTimeModel truth;
  const std::vector<std::pair<std::size_t, std::size_t>> grid = {
      {10, 500}, {10, 2000}, {20, 500}, {20, 2000}, {40, 500}, {40, 2000},
  };
  MeterConfig mcfg;
  mcfg.noise_stddev_watts = 0.05;
  mcfg.dropout_prob = 0.01;
  mcfg.seed = 11;
  const auto result = calibrate_from_traces(grid, truth,
                                            DevicePowerProfile{}, mcfg);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_NEAR(result->fit.energy.c0, 7.79e-5, 6e-6);
}

TEST(RenderSegments, ContainsStates) {
  const auto tl = four_step_timeline();
  PowerMeter meter{MeterConfig{}};
  const auto segments = segment_trace(meter.capture(tl), tl.profile());
  ASSERT_TRUE(segments.ok());
  const std::string s = render_segments(segments.value());
  EXPECT_NE(s.find("training"), std::string::npos);
  EXPECT_NE(s.find("uploading"), std::string::npos);
}

TEST(SegmentTrace, InvalidConfigRejected) {
  const auto tl = four_step_timeline();
  PowerMeter meter{MeterConfig{}};
  const auto trace = meter.capture(tl);
  SegmentationConfig cfg;
  cfg.window = 0;
  EXPECT_FALSE(segment_trace(trace, tl.profile(), cfg).ok());
}

}  // namespace
}  // namespace eefei::energy
