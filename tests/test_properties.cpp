// Cross-module property sweeps: invariants that must hold across wide
// parameter ranges, checked with parameterized gtest.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/acs.h"
#include "core/closed_form.h"
#include "core/convergence_bound.h"
#include "ml/quantize.h"
#include "sim/fei_system.h"

namespace eefei {
namespace {

// ---------------------------------------------------------------------
// Convergence-bound lattice properties over a family of constant sets.
// ---------------------------------------------------------------------
class BoundSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {
 protected:
  [[nodiscard]] core::ConvergenceBound bound() const {
    const auto [a0, a1, eps] = GetParam();
    return core::ConvergenceBound(
        energy::ConvergenceConstants{a0, a1, 5.6e-4}, eps);
  }
};

TEST_P(BoundSweep, RoundsDecreaseInServers) {
  const auto b = bound();
  double prev_k = 1e18;
  for (const double k : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    const auto t = b.optimal_rounds(k, 10.0);
    if (!t.ok()) continue;
    EXPECT_LE(t.value(), prev_k + 1e-9) << "T* must not grow with K";
    prev_k = t.value();
  }
}

TEST_P(BoundSweep, RoundsAreUnimodalInEpochs) {
  // T*(E) = A0K/(slack·E) with slack linear-decreasing in E, so slack·E is
  // concave with a single peak: T* falls, bottoms out at
  // E = C4/(2·A2·K), then climbs toward the feasibility edge.  (The
  // monotone-decrease regime of the paper's Fig. 4 is the left branch.)
  const auto b = bound();
  const double k = 10.0;
  const auto e_max = b.max_feasible_epochs(k);
  if (!e_max.has_value()) GTEST_SKIP();
  std::vector<double> ts;
  for (double e = 1.0; e < *e_max; e += 1.0) {
    const auto t = b.optimal_rounds(k, e);
    if (!t.ok()) break;
    ts.push_back(t.value());
  }
  ASSERT_GE(ts.size(), 3u);
  std::size_t direction_changes = 0;
  bool decreasing = true;
  for (std::size_t i = 1; i < ts.size(); ++i) {
    const bool step_down = ts[i] <= ts[i - 1] + 1e-9;
    if (decreasing && !step_down) {
      decreasing = false;
      ++direction_changes;
    } else if (!decreasing) {
      EXPECT_GE(ts[i], ts[i - 1] - 1e-9)
          << "T*(E) dipped again after climbing at E=" << (i + 1);
    }
  }
  EXPECT_LE(direction_changes, 1u);
}

TEST_P(BoundSweep, IntegerRoundingIsMinimal) {
  const auto b = bound();
  for (const double k : {1.0, 4.0, 16.0}) {
    for (const double e : {1.0, 8.0, 32.0}) {
      const auto t = b.optimal_rounds_int(k, e);
      if (!t.ok()) continue;
      const auto td = static_cast<double>(t.value());
      EXPECT_LE(b.gap_bound(k, e, td), b.epsilon() + 1e-9);
      if (t.value() > 1) {
        EXPECT_GT(b.gap_bound(k, e, td - 1.0), b.epsilon() - 1e-9);
      }
    }
  }
}

TEST_P(BoundSweep, FeasibilityBoundariesAreExact) {
  const auto b = bound();
  for (const double k : {1.0, 7.0, 20.0}) {
    const auto e_max = b.max_feasible_epochs(k);
    if (!e_max.has_value()) continue;
    EXPECT_TRUE(b.feasible(k, *e_max * (1.0 - 1e-9)));
    EXPECT_FALSE(b.feasible(k, *e_max * (1.0 + 1e-9)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConstantFamilies, BoundSweep,
    ::testing::Combine(::testing::Values(10.0, 100.0, 500.0),   // A0
                       ::testing::Values(0.001, 0.01, 0.05),    // A1
                       ::testing::Values(0.03, 0.05, 0.1)));    // epsilon

// ---------------------------------------------------------------------
// Closed-form coordinate minimizers really minimize along their axis.
// ---------------------------------------------------------------------
class CoordinateOptimality : public ::testing::TestWithParam<double> {};

TEST_P(CoordinateOptimality, KStarBeatsAllLatticeK) {
  const double b1 = GetParam();
  const core::ConvergenceBound bound(energy::paper_reference_constants(),
                                     0.05);
  const core::EnergyObjective obj(bound, 0.237, b1, 20);
  for (const double e : {2.0, 10.0, 30.0}) {
    const auto ks = core::k_star(obj, e);
    if (!ks.ok()) continue;
    const double best = obj.value(ks.value(), e).value();
    for (double k = 1.0; k <= 20.0; k += 1.0) {
      const auto v = obj.value(k, e);
      if (!v.ok()) continue;
      EXPECT_GE(v.value(), best - 1e-9)
          << "k=" << k << " beats k*=" << ks.value() << " at e=" << e;
    }
  }
}

TEST_P(CoordinateOptimality, EStarBeatsAllLatticeE) {
  const double b1 = GetParam();
  const core::ConvergenceBound bound(energy::paper_reference_constants(),
                                     0.05);
  const core::EnergyObjective obj(bound, 0.237, b1, 20);
  for (const double k : {1.0, 5.0, 15.0}) {
    const auto es = core::e_star_exact(obj, k);
    ASSERT_TRUE(es.ok());
    const double best = obj.value(k, es.value()).value();
    for (double e = 1.0; e <= 80.0; e += 1.0) {
      const auto v = obj.value(k, e);
      if (!v.ok()) continue;
      EXPECT_GE(v.value(), best - 1e-9)
          << "e=" << e << " beats e*=" << es.value() << " at k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CommCosts, CoordinateOptimality,
                         ::testing::Values(0.02, 0.381, 3.0, 25.0));

// ---------------------------------------------------------------------
// Simulator invariants across seeds.
// ---------------------------------------------------------------------
class SimSeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] sim::FeiSystemConfig config() const {
    auto cfg = sim::prototype_config();
    cfg.num_servers = 5;
    cfg.samples_per_server = 80;
    cfg.test_samples = 150;
    cfg.data.image_side = 12;
    cfg.model.input_dim = 144;
    cfg.sgd.learning_rate = 0.1;
    cfg.fl.clients_per_round = 2;
    cfg.fl.local_epochs = 4;
    cfg.fl.max_rounds = 5;
    cfg.seed = GetParam();
    return cfg;
  }
};

TEST_P(SimSeedSweep, LedgerAlwaysMatchesTimelines) {
  sim::FeiSystem system(config());
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  // Physical timelines and the ledger must agree on every billed state
  // (waiting differs: the ledger bills queue-waits only, the timeline
  // records all idle gaps).
  for (const auto state :
       {energy::EdgeState::kDownloading, energy::EdgeState::kTraining,
        energy::EdgeState::kUploading}) {
    double from_timelines = 0.0;
    for (const auto& tl : r->timelines) {
      from_timelines += tl.energy_in_state(state).value();
    }
    const auto category = [&] {
      switch (state) {
        case energy::EdgeState::kDownloading:
          return energy::EnergyCategory::kDownload;
        case energy::EdgeState::kTraining:
          return energy::EnergyCategory::kTraining;
        default:
          return energy::EnergyCategory::kUpload;
      }
    }();
    EXPECT_NEAR(from_timelines, r->ledger.category_total(category).value(),
                std::max(1e-9, from_timelines * 1e-9))
        << to_string(state) << " seed " << GetParam();
  }
}

TEST_P(SimSeedSweep, TimelinesAreWellFormed) {
  sim::FeiSystem system(config());
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  for (const auto& tl : r->timelines) {
    double cursor = 0.0;
    for (const auto& iv : tl.intervals()) {
      EXPECT_NEAR(iv.start.value(), cursor, 1e-9) << "gap in timeline";
      EXPECT_GT(iv.duration.value(), 0.0);
      cursor = iv.end().value();
    }
    EXPECT_LE(cursor, r->wall_clock.value() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

// ---------------------------------------------------------------------
// Quantization error bound holds across random content and widths.
// ---------------------------------------------------------------------
class QuantSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(QuantSweep, ErrorWithinHalfStep) {
  const auto [bits, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> params(257);
  for (auto& p : params) p = rng.uniform(-2.0, 3.0);
  const auto blob = ml::quantize_parameters(params, bits);
  ASSERT_TRUE(blob.ok());
  const auto restored = ml::dequantize_parameters(blob->bytes);
  ASSERT_TRUE(restored.ok());
  double lo = params[0], hi = params[0];
  for (const double p : params) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  const double bound = ml::quantization_error_bound(lo, hi, bits);
  for (std::size_t i = 0; i < params.size(); ++i) {
    ASSERT_LE(std::abs(restored.value()[i] - params[i]), bound * 1.0001);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSeeds, QuantSweep,
    ::testing::Combine(::testing::Values(4u, 8u, 16u),
                       ::testing::Values(1u, 7u, 42u, 1234u)));

}  // namespace
}  // namespace eefei
