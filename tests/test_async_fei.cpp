#include "sim/async_fei.h"

#include <gtest/gtest.h>

#include <set>

namespace eefei::sim {
namespace {

AsyncFeiConfig small_async() {
  AsyncFeiConfig cfg;
  cfg.base = prototype_config();
  cfg.base.num_servers = 6;
  cfg.base.samples_per_server = 100;
  cfg.base.test_samples = 300;
  cfg.base.data.image_side = 12;
  cfg.base.model.input_dim = 144;
  cfg.base.sgd.learning_rate = 0.1;
  cfg.base.sgd.decay = 0.998;
  cfg.base.fl.clients_per_round = 3;  // concurrent workers
  cfg.base.fl.local_epochs = 5;
  cfg.base.seed = 51;
  cfg.max_updates = 120;
  cfg.eval_every = 10;
  return cfg;
}

TEST(AsyncFei, RunsAndLearns) {
  AsyncFeiSystem system(small_async());
  const auto r = system.run();
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r->updates_applied, 120u);
  EXPECT_EQ(r->updates.size(), 120u);
  EXPECT_GT(r->final_accuracy, 0.55);
  EXPECT_GT(r->wall_clock.value(), 0.0);
}

TEST(AsyncFei, StopsAtTarget) {
  auto cfg = small_async();
  cfg.base.fl.target_accuracy = 0.5;
  cfg.max_updates = 2000;
  AsyncFeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reached_target);
  EXPECT_LT(r->updates_applied, 2000u);
  EXPECT_TRUE(r->updates_to_accuracy(0.5).has_value());
}

TEST(AsyncFei, StalenessIsBounded) {
  const auto cfg = small_async();
  AsyncFeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  for (const auto& u : r->updates) {
    // Staleness can never exceed the worker count − 1 (only concurrent
    // peers can bump the version while one trains) — here 3 workers.
    EXPECT_LE(u.staleness, 2u) << "update " << u.update;
    EXPECT_GT(u.mixing_weight, 0.0);
    EXPECT_LE(u.mixing_weight, 0.4 + 1e-12);
  }
}

TEST(AsyncFei, StalenessDiscountsMixingWeight) {
  auto cfg = small_async();
  cfg.staleness_exponent = 1.0;
  AsyncFeiSystem system(cfg);
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  for (const auto& u : r->updates) {
    const double expected =
        cfg.mixing_alpha /
        (1.0 + static_cast<double>(u.staleness));
    EXPECT_NEAR(u.mixing_weight, expected, 1e-12);
  }
}

TEST(AsyncFei, NoWaitingEnergy) {
  // The async protocol's selling point: servers never idle at a barrier.
  AsyncFeiSystem system(small_async());
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(
      r->ledger.category_total(energy::EnergyCategory::kWaiting).value(),
      0.0);
  EXPECT_GT(
      r->ledger.category_total(energy::EnergyCategory::kTraining).value(),
      0.0);
}

TEST(AsyncFei, Deterministic) {
  AsyncFeiSystem a(small_async()), b(small_async());
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->final_loss, rb->final_loss);
  EXPECT_DOUBLE_EQ(ra->wall_clock.value(), rb->wall_clock.value());
}

TEST(AsyncFei, UsesMultipleServers) {
  AsyncFeiSystem system(small_async());
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  std::set<std::size_t> servers;
  for (const auto& u : r->updates) servers.insert(u.server);
  EXPECT_GE(servers.size(), 3u);
}

TEST(AsyncFei, StragglersHurtLessThanSync) {
  // With persistently slow hardware on half the fleet and a
  // training-dominated round, the async makespan to the same number of
  // aggregate updates degrades less than the synchronous round-barrier
  // system's: the barrier stalls every round that contains one slow
  // server, while async lets fast servers keep contributing.
  auto make_async = [](bool slow) {
    auto cfg = small_async();
    cfg.base.fl.local_epochs = 40;  // training-dominated
    cfg.max_updates = 60;
    if (slow) {
      cfg.base.straggler_fraction = 0.5;
      cfg.base.straggler_slowdown = 10.0;
      cfg.base.straggler_persistent = true;
    }
    return cfg;
  };
  AsyncFeiSystem async_fast(make_async(false)), async_slow(make_async(true));

  auto make_sync = [](bool slow) {
    auto cfg = small_async().base;
    cfg.fl.local_epochs = 40;
    cfg.fl.max_rounds = 20;  // 20 rounds × 3 servers = 60 updates
    if (slow) {
      cfg.straggler_fraction = 0.5;
      cfg.straggler_slowdown = 10.0;
      cfg.straggler_persistent = true;
    }
    return cfg;
  };
  FeiSystem sync_fast(make_sync(false)), sync_slow(make_sync(true));

  const auto af = async_fast.run();
  const auto as = async_slow.run();
  const auto sf = sync_fast.run();
  const auto ss = sync_slow.run();
  ASSERT_TRUE(af.ok() && as.ok() && sf.ok() && ss.ok());

  const double async_degradation =
      as->wall_clock.value() / af->wall_clock.value();
  const double sync_degradation =
      ss->wall_clock.value() / sf->wall_clock.value();
  EXPECT_LT(async_degradation, sync_degradation)
      << "async should absorb stragglers better than the round barrier";
}

// Regression: after the stop, the queue used to keep draining cancelled
// completions, so wall_clock reported the finish time of a task that never
// applied — not the stopping update.  The makespan must be the time the
// last APPLIED update landed.
TEST(AsyncFei, WallClockStopsAtTheLastAppliedUpdate) {
  AsyncFeiSystem system(small_async());
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->updates.empty());
  EXPECT_DOUBLE_EQ(r->wall_clock.value(),
                   r->updates.back().applied_at.value());
  for (const auto& u : r->updates) {
    EXPECT_LE(u.applied_at.value(), r->wall_clock.value());
  }
}

// Regression: dispatch pre-charges download+training+upload energy; tasks
// still in flight when the run stops never complete, so their charges must
// move to kAborted instead of counting as useful work.
TEST(AsyncFei, CancelledInFlightEnergyIsReclassifiedAsAborted) {
  AsyncFeiSystem system(small_async());
  const auto r = system.run();
  ASSERT_TRUE(r.ok());
  // 3 workers: when the 120th update stops the run, the other 2 workers'
  // tasks are mid-flight and get cancelled.
  EXPECT_EQ(r->cancelled_tasks, 2u);
  EXPECT_GT(
      r->ledger.category_total(energy::EnergyCategory::kAborted).value(),
      0.0);
}

TEST(AsyncFei, EvalEveryZeroIsRejected) {
  auto cfg = small_async();
  cfg.eval_every = 0;
  EXPECT_FALSE(AsyncFeiSystem(cfg).run().ok());
}

TEST(AsyncFei, InvalidConfigRejected) {
  auto cfg = small_async();
  cfg.mixing_alpha = 0.0;
  EXPECT_FALSE(AsyncFeiSystem(cfg).run().ok());
  auto cfg2 = small_async();
  cfg2.mixing_alpha = 1.5;
  EXPECT_FALSE(AsyncFeiSystem(cfg2).run().ok());
  auto cfg3 = small_async();
  cfg3.base.fl.clients_per_round = 0;
  EXPECT_FALSE(AsyncFeiSystem(cfg3).run().ok());
}

}  // namespace
}  // namespace eefei::sim
