#include "ml/mlp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "data/synth_digits.h"
#include "ml/model_spec.h"

namespace eefei::ml {
namespace {

// Small 2-feature, 3-class fixture (same layout as the LR tests).
struct Fixture {
  std::vector<double> features;
  std::vector<int> labels;

  Fixture() {
    Rng rng(13);
    for (int c = 0; c < 3; ++c) {
      for (int i = 0; i < 40; ++i) {
        const double cx = (c == 1) ? 4.0 : 0.0;
        const double cy = (c == 2) ? 4.0 : 0.0;
        features.push_back(cx + rng.normal(0.0, 0.5));
        features.push_back(cy + rng.normal(0.0, 0.5));
        labels.push_back(c);
      }
    }
  }
  [[nodiscard]] BatchView view() const { return {features, labels, 2}; }
};

MlpConfig small_config() {
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_units = 8;
  cfg.num_classes = 3;
  cfg.init_seed = 3;
  return cfg;
}

TEST(Mlp, ParameterLayout) {
  const Mlp model(small_config());
  EXPECT_EQ(model.parameter_count(), 2u * 8u + 8u + 8u * 3u + 3u);
  EXPECT_EQ(Mlp::parameter_count_for(small_config()),
            model.parameter_count());
}

TEST(Mlp, DeterministicInit) {
  const Mlp a(small_config()), b(small_config());
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_DOUBLE_EQ(pa[i], pb[i]);
  }
  auto other = small_config();
  other.init_seed = 4;
  const Mlp c(other);
  bool differ = false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i] != c.parameters()[i]) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  Mlp model(small_config());
  const Fixture fx;
  std::vector<double> grad(model.parameter_count());
  model.loss_and_gradient(fx.view(), grad);
  auto params = model.parameters();
  const double h = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 5) {
    const double orig = params[i];
    params[i] = orig + h;
    const double up = model.evaluate(fx.view()).loss;
    params[i] = orig - h;
    const double down = model.evaluate(fx.view()).loss;
    params[i] = orig;
    const double numeric = (up - down) / (2.0 * h);
    // ReLU kinks make the comparison slightly rougher than for LR.
    EXPECT_NEAR(grad[i], numeric, 2e-4) << "param " << i;
  }
}

TEST(Mlp, GradientMatchesFiniteDifferencesWithL2) {
  auto cfg = small_config();
  cfg.l2_lambda = 0.01;
  Mlp model(cfg);
  const Fixture fx;
  std::vector<double> grad(model.parameter_count());
  model.loss_and_gradient(fx.view(), grad);
  auto params = model.parameters();
  const double h = 1e-6;
  for (std::size_t i = 2; i < params.size(); i += 7) {
    const double orig = params[i];
    params[i] = orig + h;
    const double up = model.evaluate(fx.view()).loss;
    params[i] = orig - h;
    const double down = model.evaluate(fx.view()).loss;
    params[i] = orig;
    EXPECT_NEAR(grad[i], (up - down) / (2.0 * h), 2e-4);
  }
}

TEST(Mlp, LearnsSeparableData) {
  Mlp model(small_config());
  const Fixture fx;
  std::vector<double> grad(model.parameter_count());
  auto params = model.parameters();
  for (int step = 0; step < 500; ++step) {
    model.loss_and_gradient(fx.view(), grad);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] -= 0.1 * grad[i];
    }
  }
  EXPECT_GT(model.evaluate(fx.view()).accuracy, 0.97);
}

TEST(Mlp, BeatsLinearModelOnXor) {
  // XOR-style data is not linearly separable: LR stalls near chance, the
  // MLP solves it — the reason to have a hidden layer at all.
  std::vector<double> features;
  std::vector<int> labels;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    features.push_back(x);
    features.push_back(y);
    labels.push_back((x * y > 0.0) ? 1 : 0);
  }
  const BatchView batch{features, labels, 2};

  MlpConfig mcfg;
  mcfg.input_dim = 2;
  mcfg.hidden_units = 16;
  mcfg.num_classes = 2;
  mcfg.init_seed = 5;
  Mlp mlp(mcfg);
  std::vector<double> grad(mlp.parameter_count());
  auto params = mlp.parameters();
  for (int step = 0; step < 3000; ++step) {
    mlp.loss_and_gradient(batch, grad);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] -= 0.3 * grad[i];
    }
  }
  EXPECT_GT(mlp.evaluate(batch).accuracy, 0.95);

  LogisticRegressionConfig lcfg;
  lcfg.input_dim = 2;
  lcfg.num_classes = 2;
  LogisticRegression lr(lcfg);
  std::vector<double> lgrad(lr.parameter_count());
  auto lparams = lr.parameters();
  for (int step = 0; step < 3000; ++step) {
    lr.loss_and_gradient(batch, lgrad);
    for (std::size_t i = 0; i < lparams.size(); ++i) {
      lparams[i] -= 0.3 * lgrad[i];
    }
  }
  EXPECT_LT(lr.evaluate(batch).accuracy, 0.7);
}

TEST(Mlp, CloneIsDeep) {
  Mlp model(small_config());
  auto copy = model.clone();
  model.parameters()[0] += 5.0;
  EXPECT_NE(model.parameters()[0], copy->parameters()[0]);
}

TEST(Mlp, PredictAgreesWithEvaluate) {
  Mlp model(small_config());
  const Fixture fx;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < fx.labels.size(); ++i) {
    const std::span<const double> x(fx.features.data() + i * 2, 2);
    if (model.predict(x) == fx.labels[i]) ++correct;
  }
  EXPECT_NEAR(model.evaluate(fx.view()).accuracy,
              static_cast<double>(correct) /
                  static_cast<double>(fx.labels.size()),
              1e-12);
}

TEST(ModelSpec, FactoryBuildsBothKinds) {
  ModelSpec spec;
  spec.input_dim = 10;
  spec.num_classes = 4;
  const auto lr = make_model(spec);
  EXPECT_EQ(lr->parameter_count(), 10u * 4u + 4u);
  EXPECT_EQ(spec.parameter_count(), lr->parameter_count());

  spec.kind = ModelKind::kMlp;
  spec.hidden_units = 6;
  const auto mlp = make_model(spec);
  EXPECT_EQ(mlp->parameter_count(), 10u * 6u + 6u + 6u * 4u + 4u);
  EXPECT_EQ(spec.parameter_count(), mlp->parameter_count());
}

TEST(ModelSpec, FactoryIsDeterministic) {
  ModelSpec spec;
  spec.kind = ModelKind::kMlp;
  spec.input_dim = 8;
  spec.hidden_units = 4;
  spec.num_classes = 3;
  spec.init_seed = 9;
  const auto a = make_model(spec);
  const auto b = make_model(spec);
  const auto pa = a->parameters();
  const auto pb = b->parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

}  // namespace
}  // namespace eefei::ml
