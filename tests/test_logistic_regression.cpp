#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace eefei::ml {
namespace {

// Tiny 2-feature, 3-class fixture with a known-separable layout.
struct Fixture {
  std::vector<double> features;
  std::vector<int> labels;

  Fixture() {
    Rng rng(3);
    for (int c = 0; c < 3; ++c) {
      for (int i = 0; i < 30; ++i) {
        // Class centroids at (0,0), (4,0), (0,4).
        const double cx = (c == 1) ? 4.0 : 0.0;
        const double cy = (c == 2) ? 4.0 : 0.0;
        features.push_back(cx + rng.normal(0.0, 0.5));
        features.push_back(cy + rng.normal(0.0, 0.5));
        labels.push_back(c);
      }
    }
  }

  [[nodiscard]] BatchView view() const { return {features, labels, 2}; }
};

LogisticRegressionConfig small_config(Activation act = Activation::kSoftmax) {
  LogisticRegressionConfig cfg;
  cfg.input_dim = 2;
  cfg.num_classes = 3;
  cfg.activation = act;
  return cfg;
}

TEST(LogisticRegression, ParameterLayout) {
  LogisticRegression model(small_config());
  EXPECT_EQ(model.parameter_count(), 2u * 3u + 3u);
  EXPECT_EQ(model.weights().size(), 6u);
  EXPECT_EQ(model.bias().size(), 3u);
  for (const double p : model.parameters()) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(LogisticRegression, RandomInit) {
  auto cfg = small_config();
  cfg.init_stddev = 0.1;
  Rng rng(1);
  LogisticRegression model(cfg, &rng);
  double norm = 0;
  for (const double p : model.parameters()) norm += p * p;
  EXPECT_GT(norm, 0.0);
}

TEST(LogisticRegression, InitialLossIsLogNumClasses) {
  LogisticRegression model(small_config());
  const Fixture fx;
  const auto eval = model.evaluate(fx.view());
  EXPECT_NEAR(eval.loss, std::log(3.0), 1e-12);
}

// Central-difference gradient check: the core correctness test.
TEST(LogisticRegression, GradientMatchesFiniteDifferences) {
  auto cfg = small_config();
  cfg.init_stddev = 0.3;
  Rng rng(5);
  LogisticRegression model(cfg, &rng);
  const Fixture fx;
  std::vector<double> grad(model.parameter_count());
  model.loss_and_gradient(fx.view(), grad);

  const double h = 1e-6;
  auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); i += 2) {  // subsample
    const double orig = params[i];
    params[i] = orig + h;
    const double up = model.evaluate(fx.view()).loss;
    params[i] = orig - h;
    const double down = model.evaluate(fx.view()).loss;
    params[i] = orig;
    const double numeric = (up - down) / (2.0 * h);
    EXPECT_NEAR(grad[i], numeric, 1e-5) << "param " << i;
  }
}

TEST(LogisticRegression, GradientMatchesFiniteDifferencesSigmoidHead) {
  auto cfg = small_config(Activation::kSigmoid);
  cfg.init_stddev = 0.3;
  Rng rng(6);
  LogisticRegression model(cfg, &rng);
  const Fixture fx;
  std::vector<double> grad(model.parameter_count());
  model.loss_and_gradient(fx.view(), grad);

  const double h = 1e-6;
  auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); i += 3) {
    const double orig = params[i];
    params[i] = orig + h;
    const double up = model.evaluate(fx.view()).loss;
    params[i] = orig - h;
    const double down = model.evaluate(fx.view()).loss;
    params[i] = orig;
    const double numeric = (up - down) / (2.0 * h);
    EXPECT_NEAR(grad[i], numeric, 1e-5) << "param " << i;
  }
}

TEST(LogisticRegression, GradientMatchesFiniteDifferencesWithL2) {
  auto cfg = small_config();
  cfg.init_stddev = 0.3;
  cfg.l2_lambda = 0.01;
  Rng rng(7);
  LogisticRegression model(cfg, &rng);
  const Fixture fx;
  std::vector<double> grad(model.parameter_count());
  model.loss_and_gradient(fx.view(), grad);
  const double h = 1e-6;
  auto params = model.parameters();
  for (std::size_t i = 1; i < params.size(); i += 3) {
    const double orig = params[i];
    params[i] = orig + h;
    const double up = model.evaluate(fx.view()).loss;
    params[i] = orig - h;
    const double down = model.evaluate(fx.view()).loss;
    params[i] = orig;
    EXPECT_NEAR(grad[i], (up - down) / (2.0 * h), 1e-5);
  }
}

TEST(LogisticRegression, GradientDescentLearnsSeparableData) {
  LogisticRegression model(small_config());
  const Fixture fx;
  std::vector<double> grad(model.parameter_count());
  auto params = model.parameters();
  double prev_loss = 1e9;
  for (int step = 0; step < 300; ++step) {
    const double loss = model.loss_and_gradient(fx.view(), grad);
    EXPECT_LE(loss, prev_loss + 1e-9) << "full-batch GD must not diverge";
    prev_loss = loss;
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] -= 0.1 * grad[i];
    }
  }
  const auto eval = model.evaluate(fx.view());
  EXPECT_GT(eval.accuracy, 0.97);
  EXPECT_LT(eval.loss, 0.35);
}

TEST(LogisticRegression, PredictMatchesEvaluateArgmax) {
  auto cfg = small_config();
  cfg.init_stddev = 0.5;
  Rng rng(8);
  LogisticRegression model(cfg, &rng);
  const Fixture fx;
  std::size_t correct_evaluate = 0;
  for (std::size_t i = 0; i < fx.labels.size(); ++i) {
    const std::span<const double> x(fx.features.data() + i * 2, 2);
    if (model.predict(x) == fx.labels[i]) ++correct_evaluate;
  }
  const auto eval = model.evaluate(fx.view());
  EXPECT_NEAR(eval.accuracy,
              static_cast<double>(correct_evaluate) /
                  static_cast<double>(fx.labels.size()),
              1e-12);
}

TEST(LogisticRegression, CloneIsDeepCopy) {
  auto cfg = small_config();
  cfg.init_stddev = 0.2;
  Rng rng(9);
  LogisticRegression model(cfg, &rng);
  auto copy = model.clone();
  // Mutate the original; the clone must be unaffected.
  model.parameters()[0] += 100.0;
  EXPECT_NE(model.parameters()[0], copy->parameters()[0]);
}

TEST(LogisticRegression, SigmoidHeadAlsoLearns) {
  LogisticRegression model(small_config(Activation::kSigmoid));
  const Fixture fx;
  std::vector<double> grad(model.parameter_count());
  auto params = model.parameters();
  for (int step = 0; step < 400; ++step) {
    model.loss_and_gradient(fx.view(), grad);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] -= 0.1 * grad[i];
    }
  }
  EXPECT_GT(model.evaluate(fx.view()).accuracy, 0.95);
}

}  // namespace
}  // namespace eefei::ml
