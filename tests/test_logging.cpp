#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace eefei {
namespace {

// Captured records for the test sink (single-threaded tests only).
std::vector<std::pair<LogLevel, std::string>>& captured() {
  static std::vector<std::pair<LogLevel, std::string>> v;
  return v;
}

void capture_sink(LogLevel level, std::string_view message) {
  captured().emplace_back(level, std::string(message));
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    captured().clear();
    set_log_sink(&capture_sink);
    set_log_level(LogLevel::kDebug);
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }
};

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  set_log_level(LogLevel::kInfo);
  LOG_DEBUG << "hidden";
  LOG_INFO << "visible " << 42;
  LOG_ERROR << "also visible";
  ASSERT_EQ(captured().size(), 2u);
  EXPECT_EQ(captured()[0].first, LogLevel::kInfo);
  EXPECT_NE(captured()[0].second.find("visible 42"), std::string::npos);
  EXPECT_EQ(captured()[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  LOG_ERROR << "nope";
  EXPECT_TRUE(captured().empty());
}

TEST_F(LoggingTest, MessageIncludesFileAndLevel) {
  LOG_WARN << "payload";
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_NE(captured()[0].second.find("[WARN]"), std::string::npos);
  EXPECT_NE(captured()[0].second.find("test_logging.cpp"), std::string::npos);
}

TEST_F(LoggingTest, LazyEvaluationBelowThreshold) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("costly");
  };
  LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0) << "suppressed log must not evaluate operands";
  LOG_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogLevelNames, Strings) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace eefei
