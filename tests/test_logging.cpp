#include "common/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.h"

namespace eefei {
namespace {

// Captured records for the test sink (single-threaded tests only).
std::vector<std::pair<LogLevel, std::string>>& captured() {
  static std::vector<std::pair<LogLevel, std::string>> v;
  return v;
}

void capture_sink(LogLevel level, std::string_view message) {
  captured().emplace_back(level, std::string(message));
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    captured().clear();
    set_log_sink(&capture_sink);
    set_log_level(LogLevel::kDebug);
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }
};

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  set_log_level(LogLevel::kInfo);
  LOG_DEBUG << "hidden";
  LOG_INFO << "visible " << 42;
  LOG_ERROR << "also visible";
  ASSERT_EQ(captured().size(), 2u);
  EXPECT_EQ(captured()[0].first, LogLevel::kInfo);
  EXPECT_NE(captured()[0].second.find("visible 42"), std::string::npos);
  EXPECT_EQ(captured()[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  LOG_ERROR << "nope";
  EXPECT_TRUE(captured().empty());
}

TEST_F(LoggingTest, MessageIncludesFileAndLevel) {
  LOG_WARN << "payload";
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_NE(captured()[0].second.find("[WARN]"), std::string::npos);
  EXPECT_NE(captured()[0].second.find("test_logging.cpp"), std::string::npos);
}

TEST_F(LoggingTest, LazyEvaluationBelowThreshold) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("costly");
  };
  LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0) << "suppressed log must not evaluate operands";
  LOG_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, FileNameIsShortenedToBasename) {
  LOG_WARN << "payload";
  ASSERT_EQ(captured().size(), 1u);
  // The record carries the basename, never the build machine's source tree.
  EXPECT_NE(captured()[0].second.find("test_logging.cpp:"),
            std::string::npos);
  EXPECT_EQ(captured()[0].second.find('/'), std::string::npos);
}

TEST(ShortFileName, StripsDirectories) {
  using detail::short_file_name;
  EXPECT_STREQ(short_file_name("/a/b/c/file.cpp"), "file.cpp");
  EXPECT_STREQ(short_file_name("relative/file.cpp"), "file.cpp");
  EXPECT_STREQ(short_file_name("C:\\src\\file.cpp"), "file.cpp");
  EXPECT_STREQ(short_file_name("file.cpp"), "file.cpp");
  EXPECT_STREQ(short_file_name(""), "");
}

TEST_F(LoggingTest, RecordsLandInTracerAsInstantEvents) {
  obs::Telemetry telemetry;
  const obs::TelemetryScope scope(telemetry);
  LOG_ERROR << "traced message";
  const auto events = telemetry.tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ph, 'i');
  EXPECT_STREQ(events[0].name, "ERROR");
  EXPECT_STREQ(events[0].cat, "log");
  EXPECT_NE(events[0].str_value.find("traced message"), std::string::npos);
}

// TSan-exercised: swapping the sink while another thread is mid-log_emit
// must be race-free (the emitter loads the sink pointer exactly once).
// Run under the CI thread-sanitizer job via --gtest_filter=LoggingRace*.
namespace race {
std::atomic<int> sink_a_calls{0};
std::atomic<int> sink_b_calls{0};
void sink_a(LogLevel, std::string_view) { sink_a_calls.fetch_add(1); }
void sink_b(LogLevel, std::string_view) { sink_b_calls.fetch_add(1); }
}  // namespace race

TEST(LoggingRace, SinkSwapDuringEmitIsSafe) {
  set_log_level(LogLevel::kInfo);
  set_log_sink(&race::sink_a);
  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    while (!stop.load()) {
      set_log_sink(&race::sink_b);
      set_log_sink(&race::sink_a);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    LOG_INFO << "record " << i;
  }
  stop.store(true);
  swapper.join();
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  // Every record reached exactly one of the two sinks — none torn or lost.
  EXPECT_EQ(race::sink_a_calls.load() + race::sink_b_calls.load(), 2000);
}

TEST(LogLevelNames, Strings) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace eefei
