// Fleet-scale engine bench: runs the FleetEngine at N ∈ {100, 1k, 10k}
// edge servers (100k opt-in via `n100k=1`), reporting simulation
// throughput (servers·rounds per second), peak RSS, and energy at the end
// of the run.  Also proves the thread-count byte-identity claim in-process
// before timing anything.
//
//   build/bench/bench_fleet [rounds=20] [threads=0] [n100k=1]
//
// Writes BENCH_fleet.json; tools/bench_compare.py gates CI on the
// ns_per_server_round metrics (>15% regression fails).
#include <sys/resource.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/config.h"
#include "sim/fleet_engine.h"

namespace {

using namespace eefei;

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB → MiB
}

sim::FleetEngineConfig fleet_config(std::size_t n, std::size_t rounds,
                                    std::size_t threads) {
  sim::FleetEngineConfig cfg;
  cfg.system = sim::prototype_config();
  cfg.system.num_servers = n;
  cfg.system.net.num_edge_servers = n;
  cfg.system.net.devices_per_edge = 1;  // fleets idle; keep topology lean
  cfg.system.samples_per_server = 50;
  cfg.system.test_samples = 500;
  cfg.system.data.image_side = 12;
  cfg.system.model.input_dim = 144;
  cfg.system.sgd.learning_rate = 0.1;
  cfg.system.fl.clients_per_round = 10;
  cfg.system.fl.local_epochs = 3;
  cfg.system.fl.max_rounds = rounds;
  cfg.system.fl.eval_every = 5;
  cfg.system.fl.threads = threads;
  cfg.system.charge_idle_servers = true;  // the O(N) per-round fleet work
  cfg.system.seed = 3;
  // Above 1k servers, pool the training data (256 distinct shards shared
  // round-robin) so the dataset footprint stays flat while every server
  // still trains, uploads and accounts energy individually.
  cfg.data_pool_shards = n > 1000 ? 256 : 0;
  cfg.sampled_timelines = 8;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rounds = 20;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  bool include_100k = false;
  if (const auto cfg = Config::from_args(argc, argv); cfg.ok()) {
    rounds = static_cast<std::size_t>(
        cfg->get_int_or("rounds", static_cast<long>(rounds)));
    if (const long t = cfg->get_int_or("threads", 0); t > 0) {
      threads = static_cast<std::size_t>(t);
    }
    include_100k = cfg->get_int_or("n100k", 0) != 0;
  }

  // Byte-identity proof: a serial and a threaded run of the same fleet
  // must agree on every energy bit before any throughput number means
  // anything.
  {
    auto serial_cfg = fleet_config(200, 6, 1);
    auto threaded_cfg = fleet_config(200, 6, threads);
    serial_cfg.shard_size = 16;
    sim::FleetEngine serial(serial_cfg);
    sim::FleetEngine threaded(threaded_cfg);
    const auto a = serial.run();
    const auto b = threaded.run();
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "identity probe failed to run\n");
      return 1;
    }
    const bool identical =
        a->ledger.total().value() == b->ledger.total().value() &&
        a->accumulated_energy().value() == b->accumulated_energy().value() &&
        a->wall_clock.value() == b->wall_clock.value() &&
        a->training.final_params == b->training.final_params;
    std::printf("thread identity (t=1 vs t=%zu): %s\n", threads,
                identical ? "byte-identical" : "MISMATCH");
    if (!identical) return 1;
  }

  bench::BenchReport report("fleet");
  std::vector<std::size_t> sizes = {100, 1000, 10000};
  if (include_100k) sizes.push_back(100000);

  // One timed federated run.  prepare() — the one-time population build
  // (dataset rendering + shard wiring, O(N) but amortized over a whole
  // simulation campaign) — runs OUTSIDE the timed region so
  // ns_per_server_round measures the per-round loop it names; at N = 1000
  // the build used to dominate the metric ~18:1 and buried any hot-loop
  // change in construction noise.
  struct TimedRun {
    double ns_per_server_round = 0.0;
    double energy_j = 0.0;
    double sim_secs = 0.0;
    std::size_t rounds = 0;
  };
  // Best of kReps fresh runs: a timed region of `rounds` federated rounds
  // is a few milliseconds, small enough that scheduler noise on a shared
  // core dominates a single sample.  Energy must be bit-equal across reps
  // (the simulation is deterministic) or the measurement is rejected.
  constexpr int kReps = 3;
  auto timed_run = [&](std::size_t n, bool batched,
                       TimedRun& out) -> bool {
    for (int rep = 0; rep < kReps; ++rep) {
      auto cfg = fleet_config(n, rounds, threads);
      cfg.system.fl.batched_training = batched;
      sim::FleetEngine engine(cfg);
      if (const auto st = engine.prepare(); !st.ok()) {
        std::fprintf(stderr, "N=%zu prepare failed: %s\n", n,
                     st.error().message.c_str());
        return false;
      }
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = engine.run();
      const auto t1 = std::chrono::steady_clock::now();
      if (!r.ok()) {
        std::fprintf(stderr, "N=%zu failed: %s\n", n,
                     r.error().message.c_str());
        return false;
      }
      const double elapsed_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count();
      const double server_rounds =
          static_cast<double>(n) * static_cast<double>(r->training.rounds_run);
      const double ns = elapsed_ns / server_rounds;
      if (rep > 0 && r->ledger.total().value() != out.energy_j) {
        std::fprintf(stderr, "N=%zu energy drift across reps\n", n);
        return false;
      }
      if (rep == 0 || ns < out.ns_per_server_round) {
        out.ns_per_server_round = ns;
      }
      out.energy_j = r->ledger.total().value();
      out.sim_secs = r->wall_clock.value();
      out.rounds = r->training.rounds_run;
    }
    return true;
  };

  std::printf("%8s %8s %8s %14s %10s %12s %10s\n", "servers", "rounds",
              "batched", "servers/sec", "rss MB", "energy J", "sim secs");
  for (const std::size_t n : sizes) {
    // Twin rows: the batched ModelBank path (the default, the headline
    // metric) and the serial per-client reference.  Both are bit-identical
    // by contract, so energy must agree exactly between the twins.
    TimedRun batched, serial;
    if (!timed_run(n, true, batched) || !timed_run(n, false, serial)) {
      return 1;
    }
    if (batched.energy_j != serial.energy_j) {
      std::fprintf(stderr, "N=%zu batched/serial energy mismatch\n", n);
      return 1;
    }
    const double rss = peak_rss_mb();
    const std::string tag = "fleet/N=" + std::to_string(n);
    report.add(tag + "/ns_per_server_round", batched.ns_per_server_round,
               {{"speedup_vs_serial",
                 serial.ns_per_server_round / batched.ns_per_server_round}});
    report.add(tag + "/batched=0/ns_per_server_round",
               serial.ns_per_server_round);
    report.add(tag + "/rss_mb", rss);
    report.add(tag + "/energy_j", batched.energy_j);
    for (const bool is_batched : {true, false}) {
      const TimedRun& run = is_batched ? batched : serial;
      const double per_sec =
          1e9 / run.ns_per_server_round;
      std::printf("%8zu %8zu %8d %14.0f %10.1f %12.2f %10.2f\n", n,
                  run.rounds, is_batched ? 1 : 0, per_sec, rss, run.energy_j,
                  run.sim_secs);
    }
  }
  report.write();
  return 0;
}
