// Fleet-scale engine bench: runs the FleetEngine at N ∈ {100, 1k, 10k}
// edge servers (100k opt-in via `n100k=1`) and the event-driven
// EventFleetEngine at the same sizes, reporting simulation throughput
// (servers·rounds per second), peak RSS, and energy at the end of the run.
// `n1m=1` adds the million-server row: EventFleetEngine with a virtual
// population, O(K) selection and no per-server accumulator array, at a
// pinned 100 federated rounds.  Also proves the thread-count and
// event-vs-sorted-drain byte-identity claims in-process before timing
// anything.
//
//   build/bench/bench_fleet [rounds=20] [threads=0] [n100k=1] [n1m=1]
//                           [trace=fleet.json] [overhead=1.05] [gate=1]
//
// Event rows additionally report the dispatch throughput (events_per_s)
// and the queue's high-water backlog; with n1m=1 the million-server row is
// gated IN-PROCESS against the recorded closure-queue baseline — the typed
// calendar-queue path must hold a >= 1.5x speedup or the bench fails
// (`gate=0` opts out on machines where the recorded baseline is foreign).
//
// With n1m=1 and a trace path, the million-server row runs a TRACED twin:
// telemetry on, same config.  The twin must be byte-identical to the
// untraced row (energy + final params), stay within the overhead budget
// (default 5%), and its trace sidecar must stay bounded — the fleet
// observability layer's three contract gates, run as one bench.
//
// Writes BENCH_fleet.json; tools/bench_compare.py gates CI on the
// ns_per_server_round metrics (>15% regression fails).
#include <sys/resource.h>
#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/config.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "sim/event_fleet.h"
#include "sim/fleet_engine.h"

namespace {

using namespace eefei;

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB → MiB
}

sim::FleetEngineConfig fleet_config(std::size_t n, std::size_t rounds,
                                    std::size_t threads) {
  sim::FleetEngineConfig cfg;
  cfg.system = sim::prototype_config();
  cfg.system.num_servers = n;
  cfg.system.net.num_edge_servers = n;
  cfg.system.net.devices_per_edge = 1;  // fleets idle; keep topology lean
  cfg.system.samples_per_server = 50;
  cfg.system.test_samples = 500;
  cfg.system.data.image_side = 12;
  cfg.system.model.input_dim = 144;
  cfg.system.sgd.learning_rate = 0.1;
  cfg.system.fl.clients_per_round = 10;
  cfg.system.fl.local_epochs = 3;
  cfg.system.fl.max_rounds = rounds;
  cfg.system.fl.eval_every = 5;
  cfg.system.fl.threads = threads;
  cfg.system.charge_idle_servers = true;  // the O(N) per-round fleet work
  cfg.system.seed = 3;
  // Above 1k servers, pool the training data (256 distinct shards shared
  // round-robin) so the dataset footprint stays flat while every server
  // still trains, uploads and accounts energy individually.
  cfg.data_pool_shards = n > 1000 ? 256 : 0;
  cfg.sampled_timelines = 8;
  return cfg;
}

sim::EventFleetEngineConfig event_config(std::size_t n, std::size_t rounds,
                                         std::size_t threads) {
  sim::EventFleetEngineConfig cfg;
  cfg.system = fleet_config(n, rounds, threads).system;
  cfg.data_pool_shards = n > 1000 ? 256 : 0;
  cfg.sampled_timelines = 8;
  if (n >= 1000000) {
    // The million-server shape: datasets stay pooled and eager, but
    // clients materialize lazily, per-server LAN objects are never built,
    // the O(N) accumulator array is skipped (the ledger remains), and
    // selection runs Floyd's O(K) sampler instead of the O(N) shuffle.
    cfg.virtual_population = true;
    cfg.per_server_accumulators = false;
    cfg.scalable_selection = true;
  }
  return cfg;
}

// Multi-hop backhaul variant of event_config.  With `clients == 0` the
// links stay at their transparent defaults (the zero-config twin row);
// otherwise the round selects `clients` servers and the single
// region→coordinator link is narrowed so every upload funnels through a
// congested backhaul (at N = 1000 the default 64/64 fan-ins give 16
// gateways and exactly one region).
sim::EventFleetEngineConfig multihop_config(std::size_t n, std::size_t rounds,
                                            std::size_t threads,
                                            std::size_t clients) {
  auto cfg = event_config(n, rounds, threads);
  cfg.multi_hop = true;
  if (clients > 0) {
    cfg.system.fl.clients_per_round = clients;
    cfg.backhaul_uplink.rate = BitsPerSecond::from_mbps(0.5);
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rounds = 20;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  bool include_100k = false;
  bool include_1m = false;
  bool gate = true;
  std::string trace_path;
  double overhead_budget = 1.05;
  if (const auto cfg = Config::from_args(argc, argv); cfg.ok()) {
    rounds = static_cast<std::size_t>(
        cfg->get_int_or("rounds", static_cast<long>(rounds)));
    if (const long t = cfg->get_int_or("threads", 0); t > 0) {
      threads = static_cast<std::size_t>(t);
    }
    include_100k = cfg->get_int_or("n100k", 0) != 0;
    include_1m = cfg->get_int_or("n1m", 0) != 0;
    gate = cfg->get_int_or("gate", 1) != 0;
    trace_path = cfg->get_string_or("trace", "");
    overhead_budget = cfg->get_double_or("overhead", overhead_budget);
  }

  // Byte-identity proof: a serial and a threaded run of the same fleet
  // must agree on every energy bit before any throughput number means
  // anything.
  {
    auto serial_cfg = fleet_config(200, 6, 1);
    auto threaded_cfg = fleet_config(200, 6, threads);
    serial_cfg.shard_size = 16;
    sim::FleetEngine serial(serial_cfg);
    sim::FleetEngine threaded(threaded_cfg);
    const auto a = serial.run();
    const auto b = threaded.run();
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "identity probe failed to run\n");
      return 1;
    }
    const bool identical =
        a->ledger.total().value() == b->ledger.total().value() &&
        a->accumulated_energy().value() == b->accumulated_energy().value() &&
        a->wall_clock.value() == b->wall_clock.value() &&
        a->training.final_params == b->training.final_params;
    std::printf("thread identity (t=1 vs t=%zu): %s\n", threads,
                identical ? "byte-identical" : "MISMATCH");
    if (!identical) return 1;
  }

  // Second identity proof: the event-driven engine must reproduce the
  // sorted-drain FleetEngine bit for bit (and itself be thread-invariant)
  // on the overlapping configuration.
  {
    sim::FleetEngine reference(fleet_config(200, 6, threads));
    auto ev_cfg = event_config(200, 6, threads);
    auto ev_serial_cfg = event_config(200, 6, 1);
    ev_serial_cfg.shard_size = 16;
    sim::EventFleetEngine event_engine(ev_cfg);
    sim::EventFleetEngine event_serial(ev_serial_cfg);
    const auto a = reference.run();
    const auto b = event_engine.run();
    const auto c = event_serial.run();
    if (!a.ok() || !b.ok() || !c.ok()) {
      std::fprintf(stderr, "event identity probe failed to run\n");
      return 1;
    }
    const bool identical =
        a->ledger.total().value() == b->ledger.total().value() &&
        a->accumulated_energy().value() == b->accumulated_energy().value() &&
        a->wall_clock.value() == b->wall_clock.value() &&
        a->training.final_params == b->training.final_params &&
        b->ledger.total().value() == c->ledger.total().value() &&
        b->wall_clock.value() == c->wall_clock.value() &&
        b->training.final_params == c->training.final_params;
    std::printf("event/fleet identity (N=200): %s\n",
                identical ? "byte-identical" : "MISMATCH");
    if (!identical) return 1;
  }

  bench::BenchReport report("fleet");
  std::vector<std::size_t> sizes = {100, 1000, 10000};
  if (include_100k) sizes.push_back(100000);

  // One timed federated run.  prepare() — the one-time population build
  // (dataset rendering + shard wiring, O(N) but amortized over a whole
  // simulation campaign) — runs OUTSIDE the timed region so
  // ns_per_server_round measures the per-round loop it names; at N = 1000
  // the build used to dominate the metric ~18:1 and buried any hot-loop
  // change in construction noise.
  struct TimedRun {
    double ns_per_server_round = 0.0;
    double energy_j = 0.0;
    double sim_secs = 0.0;
    std::size_t rounds = 0;
    double events = 0.0;                    // event engine only
    double events_per_s = 0.0;              // dispatch throughput, best rep
    double queue_high_water = 0.0;          // deepest pending-event backlog
    double link_wait_s = 0.0;               // multi-hop engine only
    double link_util_peak = 0.0;
    std::vector<double> final_params;       // for traced-twin identity
  };
  // Best of kReps fresh runs: a timed region of `rounds` federated rounds
  // is a few milliseconds, small enough that scheduler noise on a shared
  // core dominates a single sample.  Energy must be bit-equal across reps
  // (the simulation is deterministic) or the measurement is rejected.
  constexpr int kReps = 3;
  auto measure = [&](std::size_t n, auto make_engine,
                     TimedRun& out) -> bool {
    for (int rep = 0; rep < kReps; ++rep) {
      auto engine = make_engine();
      if (const auto st = engine.prepare(); !st.ok()) {
        std::fprintf(stderr, "N=%zu prepare failed: %s\n", n,
                     st.error().message.c_str());
        return false;
      }
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = engine.run();
      const auto t1 = std::chrono::steady_clock::now();
      if (!r.ok()) {
        std::fprintf(stderr, "N=%zu failed: %s\n", n,
                     r.error().message.c_str());
        return false;
      }
      const double elapsed_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count();
      const double server_rounds =
          static_cast<double>(n) * static_cast<double>(r->training.rounds_run);
      const double ns = elapsed_ns / server_rounds;
      if (rep > 0 && r->ledger.total().value() != out.energy_j) {
        std::fprintf(stderr, "N=%zu energy drift across reps\n", n);
        return false;
      }
      const bool best = rep == 0 || ns < out.ns_per_server_round;
      if (best) out.ns_per_server_round = ns;
      out.energy_j = r->ledger.total().value();
      out.sim_secs = r->wall_clock.value();
      out.rounds = r->training.rounds_run;
      out.final_params = r->training.final_params;
      if constexpr (requires { r->events_processed; }) {
        out.events = static_cast<double>(r->events_processed);
        if (best) out.events_per_s = out.events * 1e9 / elapsed_ns;
      }
      if constexpr (requires { r->queue_high_water; }) {
        out.queue_high_water = static_cast<double>(r->queue_high_water);
      }
      if constexpr (requires { r->link_wait; }) {
        out.link_wait_s = r->link_wait.value();
        out.link_util_peak = r->link_util_peak;
      }
    }
    return true;
  };

  std::printf("%8s %8s %8s %14s %10s %12s %10s\n", "servers", "rounds",
              "mode", "servers/sec", "rss MB", "energy J", "sim secs");
  auto print_row = [&](std::size_t n, const TimedRun& run, const char* mode,
                       double rss) {
    std::printf("%8zu %8zu %8s %14.0f %10.1f %12.2f %10.2f\n", n, run.rounds,
                mode, 1e9 / run.ns_per_server_round, rss, run.energy_j,
                run.sim_secs);
  };

  // The million-server row runs FIRST so its rss_mb reading is its own
  // peak, not an earlier row's (ru_maxrss is monotone for the process).
  // 100 federated rounds, pinned: this row is the paper-scale capacity
  // claim, not a smoke loop.
  if (include_1m) {
    constexpr std::size_t kMillion = 1000000;
    constexpr std::size_t kMillionRounds = 100;
    TimedRun event_run;
    if (!measure(kMillion, [&] {
          return sim::EventFleetEngine(
              event_config(kMillion, kMillionRounds, threads));
        }, event_run)) {
      return 1;
    }
    const double rss = peak_rss_mb();
    const std::string tag = "fleet/event/N=" + std::to_string(kMillion);
    report.add(tag + "/ns_per_server_round", event_run.ns_per_server_round,
               {{"events_processed", event_run.events},
                {"events_per_s", event_run.events_per_s},
                {"queue_high_water", event_run.queue_high_water}});
    report.add(tag + "/rss_mb", rss);
    report.add(tag + "/energy_j", event_run.energy_j);
    print_row(kMillion, event_run, "event", rss);

    // The typed-queue speedup gate: this row's whole point is the de-
    // virtualized event loop, so hold it to the recorded closure-queue
    // baseline in-process instead of trusting an external diff.  `gate=0`
    // opts out for cross-machine runs where the recorded baseline does not
    // transfer.
    constexpr double kClosureBaselineNs = 1.5401382400000001;
    const double speedup = kClosureBaselineNs / event_run.ns_per_server_round;
    std::printf("typed-queue speedup vs closure baseline: %.2fx "
                "(gate: >= 1.50x, %s)\n",
                speedup, gate ? "on" : "off");
    if (gate && speedup < 1.5) {
      std::fprintf(stderr,
                   "typed-queue gate failed: %.3f ns/server-round is only "
                   "%.2fx the %.3f ns closure baseline (need >= 1.5x)\n",
                   event_run.ns_per_server_round, speedup,
                   kClosureBaselineNs);
      return 1;
    }

    // Million-server multi-hop twin: the ~16k-node gateway/region graph
    // with transparent links must reproduce the point-to-point row bit
    // for bit, inside the same time/RSS envelope.  This is the capacity
    // claim for the network layer itself.
    {
      TimedRun mh_run;
      if (!measure(kMillion, [&] {
            return sim::EventFleetEngine(
                multihop_config(kMillion, kMillionRounds, threads, 0));
          }, mh_run)) {
        return 1;
      }
      const bool twin_ok = mh_run.energy_j == event_run.energy_j &&
                           mh_run.final_params == event_run.final_params &&
                           mh_run.link_wait_s == 0.0;
      std::printf("multihop zero-config twin (N=%zu): %s\n", kMillion,
                  twin_ok ? "byte-identical" : "MISMATCH");
      if (!twin_ok) return 1;
      const double mh_rss = peak_rss_mb();
      const std::string mtag =
          "fleet/multihop/N=" + std::to_string(kMillion);
      report.add(mtag + "/ns_per_server_round", mh_run.ns_per_server_round,
                 {{"events_processed", mh_run.events},
                  {"events_per_s", mh_run.events_per_s},
                  {"queue_high_water", mh_run.queue_high_water}});
      report.add(mtag + "/rss_mb", mh_rss);
      print_row(kMillion, mh_run, "mhop", mh_rss);
    }

    // Traced twin: telemetry on, identical config.  Three gates — the
    // non-perturbation contract (energy + final params bit-identical to
    // the untraced row), the overhead budget, and a bounded trace file.
    if (!trace_path.empty()) {
      TimedRun traced;
      std::unique_ptr<obs::Telemetry> telemetry;
      for (int rep = 0; rep < kReps; ++rep) {
        auto fresh = std::make_unique<obs::Telemetry>();
        sim::EventFleetEngine engine(
            event_config(kMillion, kMillionRounds, threads));
        if (const auto st = engine.prepare(); !st.ok()) {
          std::fprintf(stderr, "traced prepare failed: %s\n",
                       st.error().message.c_str());
          return 1;
        }
        auto scope = std::make_unique<obs::TelemetryScope>(*fresh);
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = engine.run();
        const auto t1 = std::chrono::steady_clock::now();
        scope.reset();
        if (!r.ok()) {
          std::fprintf(stderr, "traced run failed: %s\n",
                       r.error().message.c_str());
          return 1;
        }
        const double ns =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
            (static_cast<double>(kMillion) *
             static_cast<double>(r->training.rounds_run));
        if (rep == 0 || ns < traced.ns_per_server_round) {
          traced.ns_per_server_round = ns;
        }
        traced.energy_j = r->ledger.total().value();
        traced.rounds = r->training.rounds_run;
        traced.sim_secs = r->wall_clock.value();
        traced.final_params = r->training.final_params;
        telemetry = std::move(fresh);
      }
      const bool identical = traced.energy_j == event_run.energy_j &&
                             traced.final_params == event_run.final_params;
      std::printf("traced identity (N=%zu): %s\n", kMillion,
                  identical ? "byte-identical" : "MISMATCH");
      if (!identical) return 1;
      const double overhead =
          traced.ns_per_server_round / event_run.ns_per_server_round;
      std::printf("traced overhead: %.1f%% (budget %.1f%%)\n",
                  (overhead - 1.0) * 100.0, (overhead_budget - 1.0) * 100.0);
      if (overhead > overhead_budget) {
        std::fprintf(stderr, "traced overhead %.3fx exceeds budget %.3fx\n",
                     overhead, overhead_budget);
        return 1;
      }

      std::string base = trace_path;
      if (const auto dot = base.rfind(".json");
          dot != std::string::npos && dot + 5 == base.size()) {
        base.resize(dot);
      }
      for (const auto& st :
           {obs::write_chrome_trace(telemetry->tracer, trace_path),
            obs::write_metrics_json(telemetry->metrics.snapshot(),
                                    base + ".metrics.json"),
            obs::write_timeseries_json(telemetry->rounds.snapshot(),
                                       base + ".timeseries.json")}) {
        if (!st.ok()) {
          std::fprintf(stderr, "sidecar write failed: %s\n",
                       st.error().message.c_str());
          return 1;
        }
      }
      struct stat sb{};
      const double trace_mb =
          stat(trace_path.c_str(), &sb) == 0
              ? static_cast<double>(sb.st_size) / (1024.0 * 1024.0)
              : 0.0;
      std::printf("wrote %s (%.1f MB) + metrics, timeseries\n",
                  trace_path.c_str(), trace_mb);
      if (trace_mb > 20.0) {
        std::fprintf(stderr,
                     "trace sidecar %.1f MB exceeds the 20 MB bound — track "
                     "sampling is not holding\n",
                     trace_mb);
        return 1;
      }
      report.add(tag + "/traced_overhead_pct", (overhead - 1.0) * 100.0);
      report.add(tag + "/trace_mb", trace_mb);
    }
  }

  for (const std::size_t n : sizes) {
    // Twin rows: the batched ModelBank path (the default, the headline
    // metric) and the serial per-client reference.  Both are bit-identical
    // by contract, so energy must agree exactly between the twins.
    TimedRun batched, serial;
    if (!measure(n, [&] {
          auto cfg = fleet_config(n, rounds, threads);
          cfg.system.fl.batched_training = true;
          return sim::FleetEngine(cfg);
        }, batched) ||
        !measure(n, [&] {
          auto cfg = fleet_config(n, rounds, threads);
          cfg.system.fl.batched_training = false;
          return sim::FleetEngine(cfg);
        }, serial)) {
      return 1;
    }
    if (batched.energy_j != serial.energy_j) {
      std::fprintf(stderr, "N=%zu batched/serial energy mismatch\n", n);
      return 1;
    }
    // The event-driven engine on the identical configuration: a third
    // bit-identity gate (same energy or the row is rejected) plus its own
    // throughput metric.
    TimedRun event_run;
    if (!measure(n, [&] {
          return sim::EventFleetEngine(event_config(n, rounds, threads));
        }, event_run)) {
      return 1;
    }
    if (event_run.energy_j != batched.energy_j) {
      std::fprintf(stderr, "N=%zu event/fleet energy mismatch\n", n);
      return 1;
    }
    const double rss = peak_rss_mb();
    const std::string tag = "fleet/N=" + std::to_string(n);
    report.add(tag + "/ns_per_server_round", batched.ns_per_server_round,
               {{"speedup_vs_serial",
                 serial.ns_per_server_round / batched.ns_per_server_round}});
    report.add(tag + "/batched=0/ns_per_server_round",
               serial.ns_per_server_round);
    report.add(tag + "/rss_mb", rss);
    report.add(tag + "/energy_j", batched.energy_j);
    report.add("fleet/event/N=" + std::to_string(n) + "/ns_per_server_round",
               event_run.ns_per_server_round,
               {{"events_processed", event_run.events},
                {"events_per_s", event_run.events_per_s},
                {"queue_high_water", event_run.queue_high_water}});
    print_row(n, batched, "batched", rss);
    print_row(n, serial, "serial", rss);
    print_row(n, event_run, "event", rss);

    // Multi-hop rows at N = 1000: first the zero-config twin gate (default
    // transparent links must reproduce the point-to-point event row bit
    // for bit), then the congested-gateway pair — 16 gateways funneling
    // into one narrow region→coordinator backhaul at two offered loads.
    // The queueing delay must grow with the offered load or the row fails:
    // congestion is the feature under test, not an incidental number.
    if (n == 1000) {
      TimedRun twin;
      if (!measure(n, [&] {
            return sim::EventFleetEngine(
                multihop_config(n, rounds, threads, 0));
          }, twin)) {
        return 1;
      }
      const bool twin_ok = twin.energy_j == event_run.energy_j &&
                           twin.final_params == event_run.final_params &&
                           twin.link_wait_s == 0.0;
      std::printf("multihop zero-config twin (N=%zu): %s\n", n,
                  twin_ok ? "byte-identical" : "MISMATCH");
      if (!twin_ok) return 1;

      TimedRun light, heavy;
      if (!measure(n, [&] {
            return sim::EventFleetEngine(
                multihop_config(n, rounds, threads, 10));
          }, light) ||
          !measure(n, [&] {
            return sim::EventFleetEngine(
                multihop_config(n, rounds, threads, 40));
          }, heavy)) {
        return 1;
      }
      if (!(light.link_wait_s > 0.0 &&
            heavy.link_wait_s > light.link_wait_s)) {
        std::fprintf(stderr,
                     "congestion gate failed: link wait K=40 %.6fs vs "
                     "K=10 %.6fs (must grow with offered load)\n",
                     heavy.link_wait_s, light.link_wait_s);
        return 1;
      }
      std::printf("multihop congestion (N=%zu): wait K=10 %.3fs -> "
                  "K=40 %.3fs, peak util %.2f\n",
                  n, light.link_wait_s, heavy.link_wait_s,
                  heavy.link_util_peak);
      const std::string mtag = "fleet/multihop/N=" + std::to_string(n);
      report.add(mtag + "/K=10/ns_per_server_round",
                 light.ns_per_server_round,
                 {{"link_wait_s", light.link_wait_s},
                  {"link_util_peak", light.link_util_peak}});
      report.add(mtag + "/K=40/ns_per_server_round",
                 heavy.ns_per_server_round,
                 {{"link_wait_s", heavy.link_wait_s},
                  {"link_util_peak", heavy.link_util_peak}});
      print_row(n, light, "mh k10", rss);
      print_row(n, heavy, "mh k40", rss);
    }
  }
  report.write();
  return 0;
}
