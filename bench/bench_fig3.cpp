// Reproduces the paper's Fig. 3: the power-consumption trace of one edge
// server across two rounds of global model coordination, measured at 1 kHz.
//
// The paper's four-step pattern — (1) Waiting ≈ 3.6 W, (2) Model
// Downloading ≈ 4.286 W, (3) Local Model Training ≈ 5.553 W, (4) Local
// Model Uploading ≈ 5.015 W — must appear in the captured trace, and the
// per-step mean powers measured from the trace must recover the profile.
// The full 1 kHz trace is written to fig3_power_trace.csv for plotting.
#include <cstdio>
#include <fstream>

#include "bench_json.h"
#include "bench_common.h"
#include "common/table.h"
#include "energy/meter.h"
#include "energy/trace_analysis.h"

using namespace eefei;

int main(int argc, char** argv) {
  const bench::TotalTimeReport bench_report("fig3");
  auto scale = bench::scale_from_args(argc, argv);
  const bench::TraceSession trace_session("bench_fig3", scale);
  auto cfg = bench::system_config(scale);
  // The paper's prototype setting: all 20 servers, E = 40, n_k = 3000,
  // two rounds.  Learning itself is irrelevant to the trace, so the images
  // are kept tiny (8×8) while the *timing model* still sees n_k = 3000.
  cfg.samples_per_server = 3000;
  cfg.data.image_side = 8;
  cfg.model.input_dim = 64;
  cfg.test_samples = 50;
  cfg.fl.clients_per_round = cfg.num_servers;
  cfg.fl.local_epochs = 40;
  cfg.fl.max_rounds = 2;

  sim::FeiSystem system(cfg);
  const auto run = system.run();
  if (!run.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 run.error().message.c_str());
    return 1;
  }

  const auto& timeline = run->timelines[0];  // server 0, like the paper
  energy::MeterConfig mcfg;
  mcfg.sample_rate_hz = 1000.0;         // the prototype's POWER-Z rate
  mcfg.noise_stddev_watts = 0.05;       // bench-top measurement noise
  energy::PowerMeter meter(mcfg);
  const auto trace = meter.capture(timeline);

  std::printf("=== Fig. 3: power trace of edge server 0, two rounds ===\n");
  std::printf("trace: %zu samples at %.0f Hz over %.3f s\n\n", trace.size(),
              trace.sample_rate_hz(), timeline.total_duration().value());

  AsciiTable steps({"step", "state", "start_s", "duration_s",
                    "trace_mean_W", "profile_W"});
  std::size_t idx = 0;
  for (const auto& interval : timeline.intervals()) {
    const Watts mean = trace.mean_power(interval.start, interval.end());
    steps.add_row({std::to_string(idx++),
                   energy::to_string(interval.state),
                   format_double(interval.start.value(), 5),
                   format_double(interval.duration.value(), 5),
                   format_double(mean.value(), 4),
                   format_double(
                       timeline.profile().power(interval.state).value(), 4)});
  }
  std::printf("%s\n", steps.render().c_str());

  std::printf("paper's measured step means: waiting 3.6 W, download 4.286 W, "
              "training 5.553 W, upload 5.015 W\n");
  std::printf("trace-integrated energy: %.3f J (exact integral %.3f J)\n",
              trace.energy().value(), timeline.total_energy().value());

  // The §VI-B measurement methodology, applied blind to the raw trace:
  // segment by power level and recover the step structure without ever
  // looking at the simulator's ground-truth timeline.
  std::printf("\n--- automatic segmentation of the raw trace (SVI-B "
              "pipeline) ---\n");
  const auto segments = energy::segment_trace(trace, timeline.profile());
  if (segments.ok()) {
    std::printf("%s\n", energy::render_segments(segments.value()).c_str());
    const auto stats = energy::summarize_segments(segments.value());
    for (const auto& s : stats) {
      if (s.occurrences == 0) continue;
      std::printf("  %s: %zu segment(s), %.3f s total, mean %.3f W\n",
                  energy::to_string(s.state), s.occurrences,
                  s.total_time.value(), s.mean_power.value());
    }
  }

  std::ofstream csv("fig3_power_trace.csv");
  csv << trace.to_csv();
  std::printf("wrote fig3_power_trace.csv (%zu rows)\n", trace.size());
  return 0;
}
