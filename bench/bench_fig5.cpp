// Reproduces the paper's Fig. 5: total energy to train to the target
// accuracy as a function of K (servers per round), theoretical bound
// (Eq. 12, solid line in the paper) against simulated measurement traces
// (dashed line), with the optimal K* from each marked.
//
// The paper's conclusion under IID data: K* = 1 — selecting one server per
// round is the most energy-efficient, because IID gradients make extra
// servers redundant while each one bills compute + upload energy.
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_json.h"
#include "bench_common.h"
#include "common/table.h"
#include "core/acs.h"
#include "core/grid_search.h"

using namespace eefei;

int main(int argc, char** argv) {
  const bench::TotalTimeReport bench_report("fig5");
  const auto scale = bench::scale_from_args(argc, argv);
  const std::size_t fixed_e = 40;

  std::printf("=== Fig. 5: energy vs K at fixed E=%zu, target accuracy %.2f "
              "===\n\n", fixed_e, scale.target_accuracy);

  // Theory objective at the bench scale (B0/B1 from the bench system).
  auto probe_cfg = bench::system_config(scale);
  sim::FeiSystem probe(probe_cfg);
  const auto model = probe.energy_model();
  const core::ConvergenceBound bound(energy::paper_reference_constants(),
                                     0.05);
  const auto objective =
      core::EnergyObjective::from_model(bound, model, scale.num_servers);

  AsciiTable table({"K", "theory_T", "theory_J", "sim_T", "sim_modeled_J",
                    "sim_total_J", "sim_acc"});
  std::ofstream csv("fig5_energy_vs_k.csv");
  csv << "k,theory_j,sim_modeled_j,sim_total_j,sim_rounds\n";

  std::vector<std::size_t> ks{1, 2, 5, 10, 15, 20};
  for (const std::size_t k : ks) {
    std::string theory_t = "-", theory_j = "-";
    const auto t = bound.optimal_rounds_int(static_cast<double>(k),
                                            static_cast<double>(fixed_e));
    double theory_val = 0.0;
    if (t.ok()) {
      theory_val = objective.value_at_rounds(
          static_cast<double>(k), static_cast<double>(fixed_e),
          static_cast<double>(t.value()));
      theory_t = std::to_string(t.value());
      theory_j = format_double(theory_val, 5);
    }

    const auto run = bench::run_to_target(scale, k, fixed_e, 250);
    std::string sim_t = "-", sim_mod = "-", sim_tot = "-", sim_acc = "-";
    double sim_modeled = 0.0, sim_total = 0.0;
    std::size_t sim_rounds = 0;
    if (run.has_value() && run->reached) {
      sim_rounds = run->rounds;
      sim_modeled = run->modeled_energy_j;
      sim_total = run->total_energy_j;
      sim_t = std::to_string(run->rounds);
      sim_mod = format_double(run->modeled_energy_j, 5);
      sim_tot = format_double(run->total_energy_j, 5);
      sim_acc = format_double(run->final_accuracy, 4);
    }
    table.add_row({std::to_string(k), theory_t, theory_j, sim_t, sim_mod,
                   sim_tot, sim_acc});
    csv << k << ',' << theory_val << ',' << sim_modeled << ',' << sim_total
        << ',' << sim_rounds << '\n';
  }
  std::printf("%s\n", table.render().c_str());

  // Optimal K* from the bound (red asterisk in the paper's Fig. 5).
  core::AcsConfig acs_cfg;
  const auto sol = core::AcsSolver(acs_cfg).solve(objective);
  if (sol.ok()) {
    std::printf("theory K* (ACS, exact E-rule): K*=%zu, E*=%zu, T*=%zu\n",
                sol->k_int, sol->e_int, sol->t_int);
  }
  std::printf("paper's Fig. 5 conclusion: K* = 1 under the IID allocation — "
              "the energy curve must be increasing in K.\n");
  std::printf("wrote fig5_energy_vs_k.csv\n");
  return 0;
}
