// Shared configuration for the figure/table reproduction harnesses.
//
// The paper's prototype trains multinomial LR on MNIST (60k images) across
// 20 Raspberry Pis.  The harnesses run the same system on the synthetic
// digit substitute at a laptop-friendly scale (250 samples per server
// instead of 3000) — every qualitative claim is scale-free, and each bench
// prints both the bench-scale numbers and, where applicable, the
// paper-scale theory values.  Scale can be overridden from the command
// line: `bench_fig5 samples=3000 target=0.92`.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "obs/manifest.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "sim/fei_system.h"

namespace eefei::bench {

struct BenchScale {
  std::size_t num_servers = 20;
  std::size_t samples_per_server = 250;
  std::size_t test_samples = 1000;
  double learning_rate = 0.02;
  double decay = 0.998;
  double target_accuracy = 0.92;  // the paper's Figs. 5/6 accuracy level
  std::size_t threads = 0;        // 0 = hardware concurrency
  std::uint64_t seed = 3;
  /// Non-empty enables telemetry for the run; the Chrome trace is written
  /// here with .metrics.json / .manifest.json siblings (`trace=out.json`).
  std::string trace_path;
};

inline BenchScale scale_from_args(int argc, char** argv) {
  BenchScale s;
  const auto cfg = Config::from_args(argc, argv);
  if (!cfg.ok()) {
    std::fprintf(stderr, "warning: %s (using defaults)\n",
                 cfg.error().message.c_str());
    return s;
  }
  s.num_servers = static_cast<std::size_t>(
      cfg->get_int_or("servers", static_cast<long>(s.num_servers)));
  s.samples_per_server = static_cast<std::size_t>(cfg->get_int_or(
      "samples", static_cast<long>(s.samples_per_server)));
  s.test_samples = static_cast<std::size_t>(
      cfg->get_int_or("test", static_cast<long>(s.test_samples)));
  s.learning_rate = cfg->get_double_or("lr", s.learning_rate);
  s.decay = cfg->get_double_or("decay", s.decay);
  s.target_accuracy = cfg->get_double_or("target", s.target_accuracy);
  s.threads =
      static_cast<std::size_t>(cfg->get_int_or("threads", 0));
  s.seed = static_cast<std::uint64_t>(
      cfg->get_int_or("seed", static_cast<long>(s.seed)));
  s.trace_path = cfg->get_string_or("trace", "");
  return s;
}

/// RAII telemetry session for a bench binary: construct right after
/// scale_from_args; when the scale carries a trace path the whole run is
/// recorded and the destructor writes <trace>.json plus metrics and
/// manifest siblings.  With no trace path this is a no-op and the run pays
/// only the disabled-telemetry pointer checks.
class TraceSession {
 public:
  TraceSession(std::string tool, const BenchScale& scale)
      : tool_(std::move(tool)), path_(scale.trace_path) {
    if (path_.empty()) return;
    scale_ = scale;
    telemetry_ = std::make_unique<obs::Telemetry>();
    scope_ = std::make_unique<obs::TelemetryScope>(*telemetry_);
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  ~TraceSession() {
    if (telemetry_ == nullptr) return;
    scope_.reset();  // stop recording before exporting
    std::string base = path_;
    if (const auto dot = base.rfind(".json");
        dot != std::string::npos && dot + 5 == base.size()) {
      base.resize(dot);
    }
    const std::string metrics_path = base + ".metrics.json";
    const std::string manifest_path = base + ".manifest.json";
    const std::string timeseries_path = base + ".timeseries.json";
    const auto snapshot = telemetry_->metrics.snapshot();
    const auto rounds = telemetry_->rounds.snapshot();

    obs::RunManifest manifest;
    manifest.tool = tool_;
    manifest.seed = scale_.seed;
    manifest.set("servers", std::to_string(scale_.num_servers));
    manifest.set("samples", std::to_string(scale_.samples_per_server));
    manifest.set("test", std::to_string(scale_.test_samples));
    manifest.set("target", std::to_string(scale_.target_accuracy));
    manifest.set("threads", std::to_string(scale_.threads));
    manifest.add_metric_totals(snapshot);
    manifest.artifacts = {path_, metrics_path};
    // Fleet engines append the per-round table; bench binaries that never
    // run a fleet (fig5 etc.) have no rows and skip the sidecar.
    if (rounds.rows() > 0) manifest.artifacts.push_back(timeseries_path);

    std::vector<Status> statuses = {
        obs::write_chrome_trace(telemetry_->tracer, path_),
        obs::write_metrics_json(snapshot, metrics_path),
        obs::write_manifest(manifest, manifest_path)};
    if (rounds.rows() > 0) {
      statuses.push_back(obs::write_timeseries_json(rounds, timeseries_path));
    }
    for (const auto& st : statuses) {
      if (!st.ok()) {
        std::fprintf(stderr, "warning: %s\n", st.error().message.c_str());
      }
    }
    std::printf("wrote %s (+ metrics, manifest%s)\n", path_.c_str(),
                rounds.rows() > 0 ? ", timeseries" : "");
  }

 private:
  std::string tool_;
  std::string path_;
  BenchScale scale_;
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<obs::TelemetryScope> scope_;
};

inline sim::FeiSystemConfig system_config(const BenchScale& s) {
  auto cfg = sim::prototype_config();
  cfg.num_servers = s.num_servers;
  cfg.samples_per_server = s.samples_per_server;
  cfg.test_samples = s.test_samples;
  cfg.sgd.learning_rate = s.learning_rate;
  cfg.sgd.decay = s.decay;
  cfg.fl.threads = s.threads == 0
                       ? std::max(1u, std::thread::hardware_concurrency())
                       : s.threads;
  cfg.seed = s.seed;
  return cfg;
}

struct TargetRun {
  bool reached = false;
  std::size_t rounds = 0;          // T actually needed
  double final_accuracy = 0.0;
  double modeled_energy_j = 0.0;   // e^I + e^P + e^U (what Eq. 12 models)
  double total_energy_j = 0.0;     // + waiting/download overheads
  Seconds wall{0.0};
};

/// Trains to the scale's accuracy target with the given (K, E); returns the
/// energy a bank of power meters would report.
inline std::optional<TargetRun> run_to_target(const BenchScale& s,
                                              std::size_t k, std::size_t e,
                                              std::size_t max_rounds,
                                              std::size_t eval_every = 2) {
  auto cfg = system_config(s);
  cfg.fl.clients_per_round = k;
  cfg.fl.local_epochs = e;
  cfg.fl.max_rounds = max_rounds;
  cfg.fl.target_accuracy = s.target_accuracy;
  cfg.fl.eval_every = eval_every;
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  if (!r.ok()) {
    std::fprintf(stderr, "run(K=%zu, E=%zu) failed: %s\n", k, e,
                 r.error().message.c_str());
    return std::nullopt;
  }
  TargetRun out;
  out.reached = r->training.reached_target;
  out.rounds = r->training.rounds_run;
  out.final_accuracy = r->training.record.last().test_accuracy;
  out.modeled_energy_j = r->ledger.modeled_total().value();
  out.total_energy_j = r->ledger.total().value();
  out.wall = r->wall_clock;
  return out;
}

}  // namespace eefei::bench
