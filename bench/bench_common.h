// Shared configuration for the figure/table reproduction harnesses.
//
// The paper's prototype trains multinomial LR on MNIST (60k images) across
// 20 Raspberry Pis.  The harnesses run the same system on the synthetic
// digit substitute at a laptop-friendly scale (250 samples per server
// instead of 3000) — every qualitative claim is scale-free, and each bench
// prints both the bench-scale numbers and, where applicable, the
// paper-scale theory values.  Scale can be overridden from the command
// line: `bench_fig5 samples=3000 target=0.92`.
#pragma once

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>

#include "common/config.h"
#include "sim/fei_system.h"

namespace eefei::bench {

struct BenchScale {
  std::size_t num_servers = 20;
  std::size_t samples_per_server = 250;
  std::size_t test_samples = 1000;
  double learning_rate = 0.02;
  double decay = 0.998;
  double target_accuracy = 0.92;  // the paper's Figs. 5/6 accuracy level
  std::size_t threads = 0;        // 0 = hardware concurrency
  std::uint64_t seed = 3;
};

inline BenchScale scale_from_args(int argc, char** argv) {
  BenchScale s;
  const auto cfg = Config::from_args(argc, argv);
  if (!cfg.ok()) {
    std::fprintf(stderr, "warning: %s (using defaults)\n",
                 cfg.error().message.c_str());
    return s;
  }
  s.num_servers = static_cast<std::size_t>(
      cfg->get_int_or("servers", static_cast<long>(s.num_servers)));
  s.samples_per_server = static_cast<std::size_t>(cfg->get_int_or(
      "samples", static_cast<long>(s.samples_per_server)));
  s.test_samples = static_cast<std::size_t>(
      cfg->get_int_or("test", static_cast<long>(s.test_samples)));
  s.learning_rate = cfg->get_double_or("lr", s.learning_rate);
  s.decay = cfg->get_double_or("decay", s.decay);
  s.target_accuracy = cfg->get_double_or("target", s.target_accuracy);
  s.threads =
      static_cast<std::size_t>(cfg->get_int_or("threads", 0));
  s.seed = static_cast<std::uint64_t>(
      cfg->get_int_or("seed", static_cast<long>(s.seed)));
  return s;
}

inline sim::FeiSystemConfig system_config(const BenchScale& s) {
  auto cfg = sim::prototype_config();
  cfg.num_servers = s.num_servers;
  cfg.samples_per_server = s.samples_per_server;
  cfg.test_samples = s.test_samples;
  cfg.sgd.learning_rate = s.learning_rate;
  cfg.sgd.decay = s.decay;
  cfg.fl.threads = s.threads == 0
                       ? std::max(1u, std::thread::hardware_concurrency())
                       : s.threads;
  cfg.seed = s.seed;
  return cfg;
}

struct TargetRun {
  bool reached = false;
  std::size_t rounds = 0;          // T actually needed
  double final_accuracy = 0.0;
  double modeled_energy_j = 0.0;   // e^I + e^P + e^U (what Eq. 12 models)
  double total_energy_j = 0.0;     // + waiting/download overheads
  Seconds wall{0.0};
};

/// Trains to the scale's accuracy target with the given (K, E); returns the
/// energy a bank of power meters would report.
inline std::optional<TargetRun> run_to_target(const BenchScale& s,
                                              std::size_t k, std::size_t e,
                                              std::size_t max_rounds,
                                              std::size_t eval_every = 2) {
  auto cfg = system_config(s);
  cfg.fl.clients_per_round = k;
  cfg.fl.local_epochs = e;
  cfg.fl.max_rounds = max_rounds;
  cfg.fl.target_accuracy = s.target_accuracy;
  cfg.fl.eval_every = eval_every;
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  if (!r.ok()) {
    std::fprintf(stderr, "run(K=%zu, E=%zu) failed: %s\n", k, e,
                 r.error().message.c_str());
    return std::nullopt;
  }
  TargetRun out;
  out.reached = r->training.reached_target;
  out.rounds = r->training.rounds_run;
  out.final_accuracy = r->training.record.last().test_accuracy;
  out.modeled_energy_j = r->ledger.modeled_total().value();
  out.total_energy_j = r->ledger.total().value();
  out.wall = r->wall_clock;
  return out;
}

}  // namespace eefei::bench
