// Solver-quality bench (Algorithm 1): ACS against the exhaustive integer
// grid search across a family of problem shapes, plus the E-step ablation
// (exact coordinate minimizer vs the paper's printed Eq. 17).
//
// Reported per problem: ACS iterations, the (K*, E*, T*) solutions, the
// objective gap to the exhaustive optimum, and wall-clock per solve.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "core/acs.h"
#include "core/grid_search.h"

using namespace eefei;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const bench::TotalTimeReport bench_report("acs");
  std::printf("=== Algorithm 1 (ACS) vs exhaustive grid search ===\n\n");

  struct Shape {
    const char* name;
    double a1;
    double b1;
    double epsilon;
  };
  const std::vector<Shape> shapes{
      {"paper defaults (IID)", 0.005, 0.381, 0.05},
      {"non-IID variance", 0.15, 0.381, 0.05},
      {"expensive comms", 0.005, 5.0, 0.05},
      {"cheap comms", 0.005, 0.02, 0.05},
      {"tight accuracy", 0.005, 0.381, 0.02},
      {"loose accuracy", 0.02, 0.381, 0.12},
      {"IoT collection on", 0.005, 0.381 + 6.076 * 3000.0 / 1000.0, 0.05},
  };

  AsciiTable table({"problem", "acs_iters", "acs (K,E,T)", "acs_J",
                    "grid (K,E,T)", "grid_J", "gap_%", "acs_ms", "grid_ms"});
  for (const auto& s : shapes) {
    energy::ConvergenceConstants c = energy::paper_reference_constants();
    c.a1 = s.a1;
    const core::ConvergenceBound bound(c, s.epsilon);
    const double b0 = 7.79e-5 * 3000.0 + 3.34e-3;
    const core::EnergyObjective obj(bound, b0, s.b1, 20);

    auto t0 = Clock::now();
    const auto acs = core::AcsSolver().solve(obj);
    const double acs_ms = ms_since(t0);
    t0 = Clock::now();
    const auto grid = core::grid_search(obj);
    const double grid_ms = ms_since(t0);

    if (!acs.ok() || !grid.ok()) {
      table.add_row({s.name, "-", acs.ok() ? "ok" : "infeasible", "-",
                     grid.ok() ? "ok" : "infeasible", "-", "-", "-", "-"});
      continue;
    }
    const double gap =
        100.0 * (acs->objective_int - grid->best.objective) /
        grid->best.objective;
    table.add_row(
        {s.name, std::to_string(acs->iterations),
         "(" + std::to_string(acs->k_int) + "," + std::to_string(acs->e_int) +
             "," + std::to_string(acs->t_int) + ")",
         format_double(acs->objective_int, 5),
         "(" + std::to_string(grid->best.k) + "," +
             std::to_string(grid->best.e) + "," +
             std::to_string(grid->best.t) + ")",
         format_double(grid->best.objective, 5), format_double(gap, 3),
         format_double(acs_ms, 3), format_double(grid_ms, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("=== E-step ablation: exact coordinate minimizer vs the "
              "printed Eq. 17 ===\n\n");
  AsciiTable ab({"problem", "exact (K,E)", "exact_J", "eq17 (K,E)", "eq17_J",
                 "eq17_penalty_%"});
  for (const auto& s : shapes) {
    energy::ConvergenceConstants c = energy::paper_reference_constants();
    c.a1 = s.a1;
    const core::ConvergenceBound bound(c, s.epsilon);
    const double b0 = 7.79e-5 * 3000.0 + 3.34e-3;
    const core::EnergyObjective obj(bound, b0, s.b1, 20);
    core::AcsConfig exact_cfg;
    core::AcsConfig paper_cfg;
    paper_cfg.e_rule = core::EStepRule::kPaperEq17;
    const auto exact = core::AcsSolver(exact_cfg).solve(obj);
    const auto paper = core::AcsSolver(paper_cfg).solve(obj);
    if (!exact.ok() || !paper.ok()) continue;
    ab.add_row({s.name,
                "(" + std::to_string(exact->k_int) + "," +
                    std::to_string(exact->e_int) + ")",
                format_double(exact->objective_int, 5),
                "(" + std::to_string(paper->k_int) + "," +
                    std::to_string(paper->e_int) + ")",
                format_double(paper->objective_int, 5),
                format_double(100.0 * (paper->objective_int -
                                       exact->objective_int) /
                                  exact->objective_int,
                              3)});
  }
  std::printf("%s\n", ab.render().c_str());
  std::printf("Eq. 17 as printed drops the A2*K*B0*E^2 term of dE/dE=0; the "
              "penalty column quantifies the cost of that simplification.\n");
  return 0;
}
