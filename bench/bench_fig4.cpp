// Reproduces the paper's Fig. 4: training performance of multinomial
// logistic regression under different (K, E) combinations.
//
//   (a)/(b): fixed E = 40, K ∈ {1, 5, 10, 20} — global loss and test
//            accuracy vs the number of global coordination rounds T.
//   (c)/(d): fixed K = 10, E ∈ {1, 20, 40, 100} — ditto.
//
// Also prints the paper's derived reading: T (and total local gradient
// rounds E·T) required to reach the target accuracy, the numbers behind
// the paper's "E=20 → T=280, E=40 → T=90, E=100 → T=60" discussion.
// Curves are exported to fig4_curves.csv.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_json.h"
#include "bench_common.h"
#include "common/table.h"

using namespace eefei;

namespace {

struct Curve {
  std::string label;
  std::size_t k;
  std::size_t e;
  fl::TrainingRecord record;
  bool reached = false;
  std::size_t rounds_to_target = 0;
};

Curve run_curve(const bench::BenchScale& scale, std::size_t k, std::size_t e,
                std::size_t max_rounds) {
  auto cfg = bench::system_config(scale);
  cfg.fl.clients_per_round = k;
  cfg.fl.local_epochs = e;
  cfg.fl.max_rounds = max_rounds;
  cfg.fl.eval_every = 1;
  // No early stopping: Fig. 4 shows the full curves; T-at-target is read
  // off the records afterwards.
  sim::FeiSystem system(cfg);
  auto r = system.run();
  Curve c;
  c.label = "K=" + std::to_string(k) + ",E=" + std::to_string(e);
  c.k = k;
  c.e = e;
  if (r.ok()) {
    c.record = std::move(r->training.record);
    c.reached = r->training.reached_target;
    c.rounds_to_target = r->training.rounds_run;
  }
  return c;
}

void print_curves(const char* title, const std::vector<Curve>& curves,
                  const std::vector<std::size_t>& checkpoints) {
  std::printf("%s\n", title);
  std::vector<std::string> header{"round"};
  for (const auto& c : curves) header.push_back(c.label + " loss");
  for (const auto& c : curves) header.push_back(c.label + " acc");
  AsciiTable table(std::move(header));
  for (const std::size_t t : checkpoints) {
    std::vector<std::string> row{std::to_string(t)};
    for (const auto& c : curves) {
      row.push_back(t - 1 < c.record.rounds()
                        ? format_double(c.record.round(t - 1).global_loss, 4)
                        : std::string("-"));
    }
    for (const auto& c : curves) {
      row.push_back(
          t - 1 < c.record.rounds()
              ? format_double(c.record.round(t - 1).test_accuracy, 4)
              : std::string("-"));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

void print_targets(const bench::BenchScale& scale,
                   const std::vector<Curve>& curves) {
  AsciiTable table({"config", "T@target", "E*T (local grad rounds)",
                    "best_acc"});
  for (const auto& c : curves) {
    const auto t = c.record.rounds_to_accuracy(scale.target_accuracy);
    table.add_row(
        {c.label,
         t.has_value() ? std::to_string(*t) : std::string("> cap"),
         t.has_value() ? std::to_string(*t * c.e) : std::string("-"),
         format_double(c.record.best_accuracy(), 4)});
  }
  std::printf("T to reach accuracy %.2f (paper's analogous reading at 0.90):\n%s\n",
              scale.target_accuracy, table.render().c_str());
}

}  // namespace

// The training runs are fully deterministic (seeded data, seeded client
// selection, fixed-order aggregation), so final losses and accuracies are
// exact repro targets: CI gates them with a tight --fail-above, unlike the
// noisy wall-clock "total".
void report_curves(bench::BenchReport& report, const char* group,
                   const std::vector<Curve>& curves) {
  for (const auto& c : curves) {
    if (c.record.rounds() == 0) continue;
    const auto& last = c.record.round(c.record.rounds() - 1);
    report.add("final_loss/" + std::string(group) + "/" + c.label,
               last.global_loss);
    report.add("final_accuracy/" + std::string(group) + "/" + c.label,
               last.test_accuracy);
  }
}

int main(int argc, char** argv) {
  bench::BenchReport bench_report("fig4");
  const auto start = std::chrono::steady_clock::now();
  const auto scale = bench::scale_from_args(argc, argv);

  std::printf("=== Fig. 4: training performance (Table II model: LR %zux10, "
              "SGD lr=%.3g decay=%.3g) ===\n",
              784UL, scale.learning_rate, scale.decay);
  std::printf("bench scale: N=%zu servers x %zu samples, target accuracy "
              "%.2f (see EXPERIMENTS.md for the paper-scale mapping)\n\n",
              scale.num_servers, scale.samples_per_server,
              scale.target_accuracy);

  // (a)/(b): fixed E = 40, varying K.
  std::vector<Curve> fixed_e;
  for (const std::size_t k : {1UL, 5UL, 10UL, 20UL}) {
    fixed_e.push_back(run_curve(scale, k, 40, 40));
  }
  const std::vector<std::size_t> checkpoints{1, 2, 3, 5, 8, 12, 20, 30, 40};
  print_curves("--- Fig. 4(a,b): fixed E=40, varying K ---", fixed_e,
               checkpoints);
  print_targets(scale, fixed_e);

  // (c)/(d): fixed K = 10, varying E.
  std::vector<Curve> fixed_k;
  fixed_k.push_back(run_curve(scale, 10, 1, 600));
  fixed_k.push_back(run_curve(scale, 10, 20, 60));
  fixed_k.push_back(run_curve(scale, 10, 40, 40));
  fixed_k.push_back(run_curve(scale, 10, 100, 25));
  const std::vector<std::size_t> checkpoints_e{1,  2,  3,  5,   8,  12,
                                               20, 40, 100, 300, 600};
  print_curves("--- Fig. 4(c,d): fixed K=10, varying E ---", fixed_k,
               checkpoints_e);
  print_targets(scale, fixed_k);

  std::printf("paper's reading (MNIST, acc 0.9, K=10): E=20 -> T~280, "
              "E=40 -> T~90, E=100 -> T~60;\nthe non-monotone E*T verifies "
              "an interior optimal E.\n");

  std::ofstream csv("fig4_curves.csv");
  csv << "series,round,loss,accuracy\n";
  for (const auto* group : {&fixed_e, &fixed_k}) {
    for (const auto& c : *group) {
      for (const auto& r : c.record.all()) {
        csv << c.label << ',' << (r.round + 1) << ',' << r.global_loss << ','
            << r.test_accuracy << '\n';
      }
    }
  }
  std::printf("wrote fig4_curves.csv\n");

  report_curves(bench_report, "fixed_e", fixed_e);
  report_curves(bench_report, "fixed_k", fixed_k);
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  bench_report.add("total", static_cast<double>(ns));
  bench_report.write();
  return 0;
}
