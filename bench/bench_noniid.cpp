// Ablation supporting the paper's §VI-C discussion: the K* = 1 conclusion
// is an artifact of the IID data allocation.  Non-IID allocations raise the
// gradient-variance constant A1 = α1·γ·σ², which moves the optimal K*
// inward (more servers per round become worth their energy).
//
// Two parts:
//   1. measured: label skew and convergence of the simulated system under
//      IID / Dirichlet / pathological shard partitions;
//   2. theory: K*(A1) from Eq. 15 as σ² grows, with the full ACS plan.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "bench_common.h"
#include "common/table.h"
#include "core/planner.h"
#include "data/partition.h"

using namespace eefei;

int main(int argc, char** argv) {
  const bench::TotalTimeReport bench_report("noniid");
  auto scale = bench::scale_from_args(argc, argv);
  scale.target_accuracy = 0.88;  // non-IID runs need a reachable target

  std::printf("=== Non-IID ablation (paper SVI-C: K*=1 stems from IID "
              "data) ===\n\n");

  std::printf("--- measured: convergence under different partitions "
              "(K=5, E=20) ---\n");
  struct Variant {
    const char* name;
    sim::PartitionScheme scheme;
    double alpha;
  };
  const std::vector<Variant> variants{
      {"iid", sim::PartitionScheme::kIid, 0.0},
      {"dirichlet a=1.0", sim::PartitionScheme::kDirichlet, 1.0},
      {"dirichlet a=0.3", sim::PartitionScheme::kDirichlet, 0.3},
      {"shards (2/client)", sim::PartitionScheme::kShards, 0.0},
  };

  AsciiTable table({"partition", "label_skew", "T@target", "final_acc",
                    "modeled_J"});
  for (const auto& v : variants) {
    auto cfg = bench::system_config(scale);
    cfg.partition = v.scheme;
    cfg.dirichlet_alpha = v.alpha;
    cfg.shards_per_client = 2;
    cfg.fl.clients_per_round = 5;
    cfg.fl.local_epochs = 20;
    cfg.fl.max_rounds = 150;
    cfg.fl.eval_every = 2;
    cfg.fl.target_accuracy = scale.target_accuracy;
    sim::FeiSystem system(cfg);
    const auto r = system.run();
    if (!r.ok()) {
      table.add_row({v.name, "-", "failed", "-", "-"});
      continue;
    }
    // Recompute the partition's skew for the report.
    data::SynthDigitsConfig dcfg = cfg.data;
    dcfg.seed = cfg.seed * 1000003 + 17;
    data::SynthDigits gen(dcfg);
    auto train = gen.generate(cfg.num_servers * cfg.samples_per_server);
    Rng prng(cfg.seed * 7919 + 3);
    auto shards = [&]() -> Result<std::vector<data::Shard>> {
      switch (v.scheme) {
        case sim::PartitionScheme::kIid:
          return data::partition_iid(train, cfg.num_servers, prng);
        case sim::PartitionScheme::kDirichlet:
          return data::partition_dirichlet(train, cfg.num_servers, v.alpha,
                                           prng);
        case sim::PartitionScheme::kShards:
          return data::partition_shards(train, cfg.num_servers, 2, prng);
      }
      return data::partition_iid(train, cfg.num_servers, prng);
    }();
    const double skew =
        shards.ok() ? data::label_skew(shards.value(), 10) : -1.0;

    const auto t = r->training.record.rounds_to_accuracy(
        scale.target_accuracy);
    table.add_row({v.name, format_double(skew, 3),
                   t.has_value() ? std::to_string(*t) : std::string("> cap"),
                   format_double(r->training.record.best_accuracy(), 4),
                   format_double(r->ledger.modeled_total().value(), 5)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("--- theory: K* as the gradient-variance constant A1 grows "
              "---\n");
  AsciiTable ktab({"A1 (a1*g*s^2)", "K*", "E*", "T*", "plan_J",
                   "savings_vs_K1E1_%"});
  for (const double a1 : {0.005, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    core::PlannerInputs inputs;  // prototype-scale energy coefficients
    inputs.constants.a1 = a1;
    const auto plan = core::EeFeiPlanner(inputs).plan();
    if (!plan.ok()) {
      ktab.add_row({format_double(a1, 3), "infeasible", "-", "-", "-", "-"});
      continue;
    }
    std::string savings = "-";
    for (const auto& c : plan->comparisons) {
      if (c.feasible && c.baseline.k == 1 && c.baseline.e == 1) {
        savings = format_double(100.0 * c.savings, 4);
      }
    }
    ktab.add_row({format_double(a1, 3), std::to_string(plan->k),
                  std::to_string(plan->e), std::to_string(plan->t),
                  format_double(plan->predicted_energy_j, 5), savings});
  }
  std::printf("%s\n", ktab.render().c_str());
  std::printf("reading: IID (A1 small) gives the paper's K*=1; as variance "
              "grows, more servers per round pay for themselves.\n");
  return 0;
}
