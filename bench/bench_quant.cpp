// Extension ablation: quantized model uploads.
//
// Quantizing the uploaded parameters shrinks the per-round upload blob —
// i.e. the B1 term of Eq. 12 — at the cost of quantization error injected
// into every FedAvg step.  This bench sweeps the bit width, trains the
// simulated system to the accuracy target at each setting and reports the
// energy trade-off, alongside the theory-side effect of the smaller B1 on
// (K*, E*).
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "bench_common.h"
#include "common/table.h"
#include "core/planner.h"
#include "ml/quantize.h"
#include "ml/serialize.h"

using namespace eefei;

int main(int argc, char** argv) {
  const bench::TotalTimeReport bench_report("quant");
  auto scale = bench::scale_from_args(argc, argv);

  std::printf("=== Upload quantization ablation (K=1, E=20, target %.2f) "
              "===\n\n", scale.target_accuracy);

  const std::size_t params = 784 * 10 + 10;
  AsciiTable table({"bits", "blob_kB", "T@target", "modeled_J", "upload_J",
                    "final_acc"});
  for (const unsigned bits : {32u, 16u, 8u, 4u}) {
    auto cfg = bench::system_config(scale);
    cfg.fl.clients_per_round = 1;
    cfg.fl.local_epochs = 20;
    cfg.fl.max_rounds = 400;
    cfg.fl.eval_every = 2;
    cfg.fl.target_accuracy = scale.target_accuracy;
    cfg.upload_quant_bits = (bits == 32) ? 0 : bits;
    sim::FeiSystem system(cfg);
    const auto r = system.run();
    const double blob_kb =
        (bits == 32 ? static_cast<double>(ml::wire_size(params))
                    : static_cast<double>(ml::quantized_wire_size(params,
                                                                  bits))) /
        1000.0;
    if (!r.ok() || !r->training.reached_target) {
      table.add_row({std::to_string(bits), format_double(blob_kb, 4),
                     "> cap", "-", "-",
                     r.ok() ? format_double(
                                  r->training.record.best_accuracy(), 4)
                            : "failed"});
      continue;
    }
    table.add_row(
        {std::to_string(bits), format_double(blob_kb, 4),
         std::to_string(r->training.rounds_run),
         format_double(r->ledger.modeled_total().value(), 5),
         format_double(
             r->ledger.category_total(energy::EnergyCategory::kUpload)
                 .value(),
             5),
         format_double(r->training.record.last().test_accuracy, 4)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("=== theory: how a smaller B1 moves the optimum ===\n\n");
  AsciiTable plan_table({"bits", "B1_J", "K*", "E*", "T*", "plan_J"});
  for (const unsigned bits : {32u, 16u, 8u, 4u}) {
    core::PlannerInputs inputs;  // prototype scale
    const double blob =
        static_cast<double>(bits == 32 ? ml::wire_size(7850)
                                       : ml::quantized_wire_size(7850, bits)) +
        24.0;
    inputs.energy.upload = energy::UploadModel::from_link(
        Bytes{blob}, BitsPerSecond::from_mbps(3.4),
        Seconds::from_millis(2.0), Watts{5.015});
    const auto plan = core::EeFeiPlanner(inputs).plan();
    if (!plan.ok()) continue;
    plan_table.add_row({std::to_string(bits),
                        format_double(inputs.energy.upload.e_upload.value(),
                                      4),
                        std::to_string(plan->k), std::to_string(plan->e),
                        std::to_string(plan->t),
                        format_double(plan->predicted_energy_j, 5)});
  }
  std::printf("%s\n", plan_table.render().c_str());
  std::printf("reading: cheaper uploads shrink B1, which pulls the optimal "
              "E* down (less need to amortize round costs) and cuts total "
              "energy; very coarse (4-bit) quantization starts costing "
              "extra rounds instead.\n");
  return 0;
}
