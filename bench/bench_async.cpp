// Extension: synchronous FedAvg (the paper's protocol) vs asynchronous
// staleness-weighted aggregation, with and without persistent stragglers.
//
// Compared at the same accuracy target: wall-clock time, total energy and
// the waiting-energy overhead the synchronous barrier burns.  The async
// protocol's case: when some edge servers are persistently slow (thermal
// throttling, weaker hardware), the barrier makes everyone pay; async
// servers keep contributing at their own pace.
#include <cstdio>

#include "bench_json.h"
#include "bench_common.h"
#include "common/table.h"
#include "sim/async_fei.h"

using namespace eefei;

namespace {

struct Row {
  std::string name;
  bool reached = false;
  double time_s = 0.0;
  double total_j = 0.0;
  double waiting_j = 0.0;
  double accuracy = 0.0;
  std::size_t updates = 0;  // server-updates applied (rounds × K for sync)
};

Row run_sync(const bench::BenchScale& scale, bool stragglers) {
  auto cfg = bench::system_config(scale);
  cfg.fl.clients_per_round = 5;
  cfg.fl.local_epochs = 60;  // training-dominated rounds
  cfg.fl.max_rounds = 120;
  cfg.fl.eval_every = 2;
  cfg.fl.target_accuracy = scale.target_accuracy;
  if (stragglers) {
    cfg.straggler_fraction = 0.4;
    cfg.straggler_slowdown = 8.0;
    cfg.straggler_persistent = true;
  }
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  Row row;
  row.name = stragglers ? "sync + stragglers" : "sync";
  if (r.ok()) {
    row.reached = r->training.reached_target;
    row.time_s = r->wall_clock.value();
    row.total_j = r->ledger.total().value();
    row.waiting_j =
        r->ledger.category_total(energy::EnergyCategory::kWaiting).value();
    row.accuracy = r->training.record.last().test_accuracy;
    row.updates = r->training.rounds_run * 5;
  }
  return row;
}

Row run_async(const bench::BenchScale& scale, bool stragglers) {
  sim::AsyncFeiConfig cfg;
  cfg.base = bench::system_config(scale);
  cfg.base.fl.clients_per_round = 5;  // concurrent workers
  cfg.base.fl.local_epochs = 60;
  cfg.base.fl.target_accuracy = scale.target_accuracy;
  cfg.max_updates = 1200;
  cfg.eval_every = 5;
  if (stragglers) {
    cfg.base.straggler_fraction = 0.4;
    cfg.base.straggler_slowdown = 8.0;
    cfg.base.straggler_persistent = true;
  }
  sim::AsyncFeiSystem system(cfg);
  const auto r = system.run();
  Row row;
  row.name = stragglers ? "async + stragglers" : "async";
  if (r.ok()) {
    row.reached = r->reached_target;
    row.time_s = r->wall_clock.value();
    row.total_j = r->ledger.total().value();
    row.waiting_j =
        r->ledger.category_total(energy::EnergyCategory::kWaiting).value();
    row.accuracy = r->final_accuracy;
    row.updates = r->updates_applied;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TotalTimeReport bench_report("async");
  auto scale = bench::scale_from_args(argc, argv);
  scale.target_accuracy = std::min(scale.target_accuracy, 0.90);

  std::printf("=== sync FedAvg vs async staleness-weighted aggregation "
              "(target %.2f) ===\n", scale.target_accuracy);
  std::printf("5 workers, E=60; stragglers: 40%% of servers persistently "
              "8x slower\n\n");

  AsciiTable table({"protocol", "reached", "time_s", "total_J",
                    "waiting_J", "updates", "final_acc"});
  for (const bool stragglers : {false, true}) {
    for (const bool async : {false, true}) {
      const Row row = async ? run_async(scale, stragglers)
                            : run_sync(scale, stragglers);
      table.add_row({row.name, row.reached ? "yes" : "NO",
                     format_double(row.time_s, 5),
                     format_double(row.total_j, 5),
                     format_double(row.waiting_j, 4),
                     std::to_string(row.updates),
                     format_double(row.accuracy, 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("readings:\n");
  std::printf("  * async burns zero waiting energy (no barrier), but its "
              "staleness-discounted mixing needs more server-updates to the "
              "same accuracy — on a clean fleet sync wins outright;\n");
  std::printf("  * the async case is straggler resilience: compare the "
              "relative time degradation of the two protocols when 40%% of "
              "the fleet is persistently slow.\n");
  return 0;
}
