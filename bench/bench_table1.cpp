// Reproduces the paper's Table I ("time duration of step (3) under
// different training parameters") and the §VI-B least-squares calibration
// of c0 and c1.
//
// The paper measured these durations with a 1 kHz USB power meter on a
// Raspberry Pi 4B; here the edge-server simulation plays the Pi (see
// DESIGN.md).  Three sections:
//   1. the simulated Table I next to the paper's published values,
//   2. the least-squares fit (c0, c1) from the simulated measurements,
//   3. the same fit on the paper's published rows — recovering the paper's
//      own c0 = 7.79e-5, c1 = 3.34e-3.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "common/table.h"
#include "energy/calibration.h"
#include "energy/power_model.h"
#include "energy/trace_analysis.h"

using namespace eefei;

namespace {

struct PaperRow {
  std::size_t e;
  std::size_t n;
  double seconds;
};

// Table I, verbatim.
const std::vector<PaperRow>& paper_rows() {
  static const std::vector<PaperRow> rows = {
      {10, 100, 0.0197},  {10, 500, 0.0749},  {10, 1000, 0.1471},
      {10, 2000, 0.2855}, {20, 100, 0.0403},  {20, 500, 0.1508},
      {20, 1000, 0.2912}, {20, 2000, 0.5721}, {40, 100, 0.0799},
      {40, 500, 0.3026},  {40, 1000, 0.5554}, {40, 2000, 1.1451},
  };
  return rows;
}

}  // namespace

int main() {
  const bench::TotalTimeReport bench_report("table1");
  std::printf("=== Table I: time duration of step (3) ===\n");
  std::printf("(simulated edge server vs the paper's measured rows)\n\n");

  const energy::TrainingTimeModel timing;  // the calibrated Pi model
  Rng rng(99);
  const double jitter = 0.01;  // 1%% measurement noise, like the prototype

  AsciiTable table({"E", "n_k", "simulated_s", "paper_s", "diff_%"});
  std::vector<energy::TimingObservation> simulated;
  for (const auto& row : paper_rows()) {
    const double sim_s =
        timing.duration(row.e, row.n).value() * (1.0 + rng.normal(0, jitter));
    simulated.push_back({row.e, row.n, Seconds{sim_s}});
    table.add_row({static_cast<double>(row.e), static_cast<double>(row.n),
                   sim_s, row.seconds,
                   100.0 * (sim_s - row.seconds) / row.seconds});
  }
  std::printf("%s\n", table.render().c_str());

  const Watts p_train =
      energy::DevicePowerProfile::raspberry_pi_4b().power(
          energy::EdgeState::kTraining);

  std::printf("=== Least-squares fit on the simulated measurements ===\n");
  const auto sim_fit = energy::fit_training_time(simulated, p_train);
  if (sim_fit.ok()) {
    std::printf("c0 = %.4g J/(sample*epoch)   c1 = %.4g J/epoch   R^2 = %.6f\n\n",
                sim_fit->energy.c0, sim_fit->energy.c1, sim_fit->r_squared);
  }

  std::printf("=== Full meter pipeline: 1 kHz traces -> segmentation -> "
              "fit ===\n");
  std::vector<std::pair<std::size_t, std::size_t>> grid;
  for (const auto& row : paper_rows()) grid.emplace_back(row.e, row.n);
  energy::MeterConfig mcfg;
  mcfg.noise_stddev_watts = 0.05;
  mcfg.seed = 77;
  const auto pipeline = energy::calibrate_from_traces(
      grid, timing, energy::DevicePowerProfile{}, mcfg);
  if (pipeline.ok()) {
    std::printf("c0 = %.4g J/(sample*epoch)   c1 = %.4g J/epoch   "
                "R^2 = %.6f  (from %zu segmented traces)\n\n",
                pipeline->fit.energy.c0, pipeline->fit.energy.c1,
                pipeline->fit.r_squared, pipeline->observations.size());
  } else {
    std::printf("pipeline failed: %s\n\n", pipeline.error().message.c_str());
  }

  std::printf("=== Least-squares fit on the paper's published rows ===\n");
  std::vector<energy::TimingObservation> published;
  for (const auto& row : paper_rows()) {
    published.push_back({row.e, row.n, Seconds{row.seconds}});
  }
  const auto paper_fit = energy::fit_training_time(published, p_train);
  if (paper_fit.ok()) {
    std::printf("c0 = %.4g J/(sample*epoch)   c1 = %.4g J/epoch   R^2 = %.6f\n",
                paper_fit->energy.c0, paper_fit->energy.c1,
                paper_fit->r_squared);
    std::printf("paper reports: c0 = 7.79e-05, c1 = 3.34e-03\n");
  }
  return 0;
}
