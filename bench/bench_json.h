// Machine-readable bench output.
//
// Every bench binary drops a BENCH_<name>.json next to its console output:
//
//   {"bench": "micro", "schema": 1, "threads": 4,
//    "metrics": [
//      {"name": "BM_LrLossAndGradient/3000", "ns_per_op": 1.7e7,
//       "baseline_ns_per_op": 6.8e7, "speedup_vs_baseline": 4.0}]}
//
// Each metric is written on one line so downstream tooling (and the
// baseline re-reader below) can parse it with nothing fancier than a line
// scan — tools/bench_compare.py does exactly that with the stdlib.
//
// Baselines resolve in order:
//   1. $EEFEI_BENCH_BASELINE_DIR/BENCH_<name>.json (e.g. the checked-in
//      bench/baselines/ snapshots of the pre-optimization seed), else
//   2. the previous BENCH_<name>.json in the output directory (so
//      back-to-back runs compare against each other automatically).
// A missing baseline — or a metric absent from it — is a first recording,
// not an error: the metric is simply written without speedup fields.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/build_info.h"
#include "obs/manifest.h"
#include "obs/trace_export.h"

namespace eefei::bench {

/// ns_per_op for each metric of a previously written BENCH_<name>.json.
inline std::map<std::string, double> read_baseline(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    // One metric per line: {"name": "...", "ns_per_op": <num>, ...}
    const auto name_key = line.find("\"name\"");
    const auto ns_key = line.find("\"ns_per_op\"");
    if (name_key == std::string::npos || ns_key == std::string::npos) {
      continue;
    }
    const auto q0 = line.find('"', line.find(':', name_key) + 1);
    const auto q1 = line.find('"', q0 + 1);
    if (q0 == std::string::npos || q1 == std::string::npos) continue;
    const std::string name = line.substr(q0 + 1, q1 - q0 - 1);
    const char* num = line.c_str() + line.find(':', ns_key) + 1;
    char* end = nullptr;
    const double ns = std::strtod(num, &end);
    if (end != num) out[name] = ns;
  }
  return out;
}

class BenchReport {
 public:
  /// `name` is the suffix of BENCH_<name>.json; `out_dir` defaults to the
  /// working directory.
  explicit BenchReport(std::string name, std::string out_dir = ".")
      : name_(std::move(name)), out_dir_(std::move(out_dir)) {}

  /// Extra numeric fields emitted on the metric's JSON line alongside
  /// ns_per_op — e.g. {"gb_per_s", 12.3} or {"speedup_vs_scalar", 1.8}.
  using Extras = std::vector<std::pair<std::string, double>>;

  void add(const std::string& metric, double ns_per_op,
           Extras extras = {}) {
    metrics_.push_back({metric, ns_per_op, std::move(extras)});
  }

  /// Writes BENCH_<name>.json and returns its path.
  std::string write() const {
    const std::string path = out_dir_ + "/BENCH_" + name_ + ".json";
    std::map<std::string, double> baseline;
    if (const char* dir = std::getenv("EEFEI_BENCH_BASELINE_DIR")) {
      baseline =
          read_baseline(std::string(dir) + "/BENCH_" + name_ + ".json");
    }
    if (baseline.empty()) baseline = read_baseline(path);

    std::ostringstream out;
    out.precision(17);
    out << "{\"bench\": \"" << name_ << "\", \"schema\": 1"
        << ", \"schema_version\": " << obs::kTelemetrySchemaVersion
        << ", \"git_sha\": \"" << obs::git_sha() << "\", \"threads\": "
        << std::max(1u, std::thread::hardware_concurrency())
        << ",\n \"metrics\": [";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const auto& [metric, ns, extras] = metrics_[i];
      out << (i == 0 ? "\n" : ",\n");
      out << "  {\"name\": \"" << metric << "\", \"ns_per_op\": " << ns;
      for (const auto& [key, value] : extras) {
        out << ", \"" << key << "\": " << value;
      }
      if (const auto it = baseline.find(metric);
          it != baseline.end() && ns > 0.0) {
        out << ", \"baseline_ns_per_op\": " << it->second
            << ", \"speedup_vs_baseline\": " << it->second / ns;
      }
      out << "}";
    }
    out << "\n]}\n";

    std::ofstream file(path);
    file << out.str();
    std::printf("wrote %s\n", path.c_str());

    // Provenance record: BENCH_<name>.manifest.json answers "what produced
    // this?" without shell-history spelunking.
    obs::RunManifest manifest;
    manifest.tool = "bench_" + name_;
    manifest.artifacts.push_back(path);
    for (const auto& [metric, ns, extras] : metrics_) {
      manifest.metric_totals.emplace_back(metric + ".ns_per_op", ns);
    }
    const std::string manifest_path =
        out_dir_ + "/BENCH_" + name_ + ".manifest.json";
    if (const auto st = obs::write_manifest(manifest, manifest_path);
        !st.ok()) {
      std::fprintf(stderr, "warning: %s\n", st.error().message.c_str());
    }
    return path;
  }

 private:
  struct Metric {
    std::string name;
    double ns_per_op = 0.0;
    Extras extras;
  };

  std::string name_;
  std::string out_dir_;
  std::vector<Metric> metrics_;
};

/// RAII end-to-end timer for the figure/table harnesses: construct at the
/// top of main(); on scope exit it writes BENCH_<name>.json with a single
/// "total" metric covering the whole run.
class TotalTimeReport {
 public:
  explicit TotalTimeReport(std::string name)
      : report_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ~TotalTimeReport() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    report_.add("total", static_cast<double>(ns));
    report_.write();
  }

  TotalTimeReport(const TotalTimeReport&) = delete;
  TotalTimeReport& operator=(const TotalTimeReport&) = delete;

 private:
  BenchReport report_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace eefei::bench
