// Fault-tolerance sweep: energy-to-target vs. link failure rate.
//
// For each per-attempt loss probability the system trains to the accuracy
// target with retransmission recovery (attempt cap 6, exponential backoff)
// and one spare server per round.  Reported per rate: total energy to the
// target, the share burnt on retransmissions (kRetry) and on lost work
// (kAborted), link retries, and the simulated makespan.  The loss=0 column
// is the fault-free baseline — the overhead of resilience reads directly
// off the deltas.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "common/table.h"
#include "sim/fei_system.h"

using namespace eefei;

namespace {

struct Row {
  double loss_rate = 0.0;
  bool reached = false;
  std::size_t rounds = 0;
  double total_j = 0.0;
  double retry_j = 0.0;
  double aborted_j = 0.0;
  std::size_t retries = 0;
  std::size_t aborted = 0;
  double time_s = 0.0;
};

Row run_at(const bench::BenchScale& scale, double loss_rate) {
  auto cfg = bench::system_config(scale);
  cfg.fl.clients_per_round = 5;
  cfg.fl.local_epochs = 20;
  cfg.fl.max_rounds = 120;
  cfg.fl.eval_every = 2;
  cfg.fl.target_accuracy = scale.target_accuracy;
  if (loss_rate > 0.0) {
    cfg.net.link_faults.loss_probability = loss_rate;
    cfg.fl.overselect = 1;
  }
  sim::FeiSystem system(cfg);
  const auto r = system.run();
  Row row;
  row.loss_rate = loss_rate;
  if (r.ok()) {
    row.reached = r->training.reached_target;
    row.rounds = r->training.rounds_run;
    row.total_j = r->ledger.total().value();
    row.retry_j =
        r->ledger.category_total(energy::EnergyCategory::kRetry).value();
    row.aborted_j =
        r->ledger.category_total(energy::EnergyCategory::kAborted).value();
    row.retries = r->total_retries;
    row.aborted = r->total_aborted_updates;
    row.time_s = r->wall_clock.value();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("faults");
  const auto start = std::chrono::steady_clock::now();
  auto scale = bench::scale_from_args(argc, argv);
  scale.target_accuracy = std::min(scale.target_accuracy, 0.88);
  const bench::TraceSession trace("bench_faults", scale);

  std::printf("=== energy-to-target vs. link failure rate (target %.2f) ===\n",
              scale.target_accuracy);
  std::printf("K=5 (+1 overselected), E=20, retransmission cap 6, "
              "exponential backoff\n\n");

  AsciiTable table({"loss", "reached", "rounds", "total_J", "retry_J",
                    "aborted_J", "retries", "lost", "time_s"});
  for (const double rate : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    const Row row = run_at(scale, rate);
    table.add_row({format_double(row.loss_rate, 2),
                   row.reached ? "yes" : "NO", std::to_string(row.rounds),
                   format_double(row.total_j, 5),
                   format_double(row.retry_j, 4),
                   format_double(row.aborted_j, 4),
                   std::to_string(row.retries), std::to_string(row.aborted),
                   format_double(row.time_s, 5)});
    char metric[64];
    std::snprintf(metric, sizeof(metric), "energy_to_target_J/loss=%.2f",
                  row.loss_rate);
    report.add(metric, row.total_j);
    std::snprintf(metric, sizeof(metric), "retry_J/loss=%.2f", row.loss_rate);
    report.add(metric, row.retry_j);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("readings:\n");
  std::printf("  * retransmissions recover every transfer up to ~30%% loss — "
              "the accuracy target is still reached, at a retry-energy "
              "premium that grows with the loss rate;\n");
  std::printf("  * 'lost' updates (attempt cap exhausted) stay rare and the "
              "overselected spare keeps the aggregation quorum full.\n");

  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  report.add("total", static_cast<double>(ns));
  report.write();
  return 0;
}
