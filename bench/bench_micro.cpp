// Google-benchmark microbenchmarks of the performance-critical kernels:
// the LR forward/backward pass, FedAvg aggregation, model serialization,
// synthetic-digit rendering, the event queue and the power meter.
#include <benchmark/benchmark.h>

#include <cassert>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "data/synth_digits.h"
#include "ml/aligned.h"
#include "ml/simd.h"
#include "energy/meter.h"
#include "fl/aggregator.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/serialize.h"
#include "obs/telemetry.h"
#include "core/acs.h"
#include "sim/event_queue.h"
#include "sim/fei_system.h"

using namespace eefei;

namespace {

data::Dataset make_batch(std::size_t n, std::size_t side) {
  data::SynthDigitsConfig cfg;
  cfg.image_side = side;
  cfg.seed = 9;
  data::SynthDigits gen(cfg);
  return gen.generate(n);
}

// ---------------------------------------------------------------------------
// SIMD kernel benchmarks.  Each runs twice: through the runtime-dispatched
// table (widest ISA the CPU supports) and pinned to the scalar reference
// table, so BENCH_micro.json records both the absolute GB/s and a
// speedup_vs_scalar ratio per shape.  Inputs are rendered digit images —
// the blank margins exercise the kernels' zero-block sparse skip exactly
// like the training hot path does.
// ---------------------------------------------------------------------------

void RunAccumulateRows(benchmark::State& state,
                       const ml::simd::KernelTable& table) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto c = static_cast<std::size_t>(state.range(1));
  const std::size_t kRows = 64;
  const data::Dataset ds = make_batch(kRows, 28);
  assert(ds.view().feature_dim == d);
  // Weights and accumulators live in 64-byte-aligned storage, exactly like
  // the real call sites (Matrix / Workspace buffers are AlignedVector).
  Rng rng(7);
  ml::AlignedVector w(d * c);
  for (auto& x : w) x = rng.normal();
  ml::AlignedVector acc(c, 0.0);
  std::size_t row = 0;
  for (auto _ : state) {
    const double* x = ds.view().features.data() + (row % kRows) * d;
    ++row;
    table.accumulate_rows(x, d, c, w.data(), acc.data());
    benchmark::DoNotOptimize(acc.data());
  }
  // Nominal traffic (sparse skip reduces the real numbers): x once, the
  // full weight matrix, acc read+write.
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>((d + d * c + 2 * c) * sizeof(double)));
}

void BM_AccumulateRows(benchmark::State& state) {
  RunAccumulateRows(state, ml::simd::kernels());
}
BENCHMARK(BM_AccumulateRows)->Args({784, 10})->Args({784, 256});

void BM_AccumulateRowsScalar(benchmark::State& state) {
  RunAccumulateRows(state, *ml::simd::kernels_for(ml::simd::Isa::kScalar));
}
BENCHMARK(BM_AccumulateRowsScalar)->Args({784, 10})->Args({784, 256});

void RunAccumulateOuter(benchmark::State& state,
                        const ml::simd::KernelTable& table) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto c = static_cast<std::size_t>(state.range(1));
  const std::size_t kRows = 64;
  const data::Dataset ds = make_batch(kRows, 28);
  assert(ds.view().feature_dim == d);
  Rng rng(8);
  ml::AlignedVector err(c);
  for (auto& x : err) x = rng.normal();
  ml::AlignedVector out(d * c, 0.0);
  std::size_t row = 0;
  for (auto _ : state) {
    const double* x = ds.view().features.data() + (row % kRows) * d;
    ++row;
    table.accumulate_outer(x, d, c, err.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>((d + c + 2 * d * c) * sizeof(double)));
}

void BM_AccumulateOuter(benchmark::State& state) {
  RunAccumulateOuter(state, ml::simd::kernels());
}
BENCHMARK(BM_AccumulateOuter)->Args({784, 10})->Args({784, 256});

void BM_AccumulateOuterScalar(benchmark::State& state) {
  RunAccumulateOuter(state, *ml::simd::kernels_for(ml::simd::Isa::kScalar));
}
BENCHMARK(BM_AccumulateOuterScalar)->Args({784, 10})->Args({784, 256});

// ---------------------------------------------------------------------------
// Batched (multi-model) kernel benchmarks: one indirect call covers K
// independent packed problems — the ModelBank hot loop.  K = 1 prices the
// packed representation itself; K ∈ {4, 10, 64} shows the dispatch/locality
// amortization at fleet-round model counts.
// ---------------------------------------------------------------------------

struct BatchedProblems {
  std::vector<ml::AlignedVector> block_x;
  std::vector<std::vector<std::uint32_t>> run_off;
  std::vector<std::vector<std::uint32_t>> run_blocks;
  std::vector<ml::AlignedVector> tail_x;
  std::vector<std::vector<std::uint32_t>> tail_off;
  std::vector<ml::AlignedVector> w, acc, err, out;
  std::vector<ml::simd::RowsBatchArg> rows;
  std::vector<ml::simd::OuterBatchArg> outer;

  BatchedProblems(const data::Dataset& ds, std::size_t k, std::size_t d,
                  std::size_t c) {
    Rng rng(17);
    for (std::size_t m = 0; m < k; ++m) {
      const double* x = ds.view().features.data() + (m % ds.size()) * d;
      block_x.emplace_back((d / 4) * 4);
      run_off.emplace_back(d / 4);
      run_blocks.emplace_back(d / 4);
      tail_x.emplace_back(d % 4 + 1);
      tail_off.emplace_back(d % 4 + 1);
      const auto counts = ml::simd::pack_sample(
          x, d, c, block_x.back().data(), run_off.back().data(),
          run_blocks.back().data(), tail_x.back().data(),
          tail_off.back().data());
      w.emplace_back(d * c);
      for (auto& v : w.back()) v = rng.normal();
      acc.emplace_back(c, 0.0);
      err.emplace_back(c);
      for (auto& v : err.back()) v = rng.normal();
      out.emplace_back(d * c, 0.0);
      const ml::simd::PackedSample sample{
          block_x.back().data(), run_off.back().data(),
          run_blocks.back().data(), counts.runs,
          tail_x.back().data(),  tail_off.back().data(),  counts.tail};
      rows.push_back({sample, w.back().data(), acc.back().data()});
      outer.push_back({sample, err.back().data(), out.back().data()});
    }
  }
};

void RunAccumulateRowsBatched(benchmark::State& state,
                              const ml::simd::KernelTable& table) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const auto c = static_cast<std::size_t>(state.range(2));
  const data::Dataset ds = make_batch(64, 28);
  BatchedProblems p(ds, k, d, c);
  for (auto _ : state) {
    table.accumulate_rows_batched(p.rows.data(), k, c);
    benchmark::DoNotOptimize(p.rows.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(k * (d + d * c + 2 * c) * sizeof(double)));
}

void BM_AccumulateRowsBatched(benchmark::State& state) {
  RunAccumulateRowsBatched(state, ml::simd::kernels());
}
BENCHMARK(BM_AccumulateRowsBatched)
    ->Args({1, 784, 10})->Args({4, 784, 10})->Args({10, 784, 10})
    ->Args({64, 784, 10})->Args({1, 784, 256})->Args({4, 784, 256})
    ->Args({10, 784, 256})->Args({64, 784, 256});

void BM_AccumulateRowsBatchedScalar(benchmark::State& state) {
  RunAccumulateRowsBatched(state,
                           *ml::simd::kernels_for(ml::simd::Isa::kScalar));
}
BENCHMARK(BM_AccumulateRowsBatchedScalar)
    ->Args({1, 784, 10})->Args({4, 784, 10})->Args({10, 784, 10})
    ->Args({64, 784, 10})->Args({1, 784, 256})->Args({4, 784, 256})
    ->Args({10, 784, 256})->Args({64, 784, 256});

void RunAccumulateOuterBatched(benchmark::State& state,
                               const ml::simd::KernelTable& table) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const auto c = static_cast<std::size_t>(state.range(2));
  const data::Dataset ds = make_batch(64, 28);
  BatchedProblems p(ds, k, d, c);
  for (auto _ : state) {
    table.accumulate_outer_batched(p.outer.data(), k, c);
    benchmark::DoNotOptimize(p.outer.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(k * (d + c + 2 * d * c) * sizeof(double)));
}

void BM_AccumulateOuterBatched(benchmark::State& state) {
  RunAccumulateOuterBatched(state, ml::simd::kernels());
}
BENCHMARK(BM_AccumulateOuterBatched)
    ->Args({1, 784, 10})->Args({4, 784, 10})->Args({10, 784, 10})
    ->Args({64, 784, 10})->Args({1, 784, 256})->Args({4, 784, 256})
    ->Args({10, 784, 256})->Args({64, 784, 256});

void BM_AccumulateOuterBatchedScalar(benchmark::State& state) {
  RunAccumulateOuterBatched(state,
                            *ml::simd::kernels_for(ml::simd::Isa::kScalar));
}
BENCHMARK(BM_AccumulateOuterBatchedScalar)
    ->Args({1, 784, 10})->Args({4, 784, 10})->Args({10, 784, 10})
    ->Args({64, 784, 10})->Args({1, 784, 256})->Args({4, 784, 256})
    ->Args({10, 784, 256})->Args({64, 784, 256});

void BM_LrLossAndGradient(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const data::Dataset ds = make_batch(n, 28);
  ml::LogisticRegressionConfig cfg;
  ml::LogisticRegression model(cfg);
  std::vector<double> grad(model.parameter_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.loss_and_gradient(ds.view(), grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LrLossAndGradient)->Arg(100)->Arg(500)->Arg(3000);

void BM_LrLossAndGradientTraced(benchmark::State& state) {
  // Same body as BM_LrLossAndGradient/500 but with telemetry installed, so
  // every gemm pays two clock reads and a histogram update.  The telemetry
  // overhead contract reads off BENCH_micro.json directly:
  //   - disabled cost: BM_LrLossAndGradient/500 vs its pre-telemetry
  //     baseline (the instrumented sites collapse to a pointer check);
  //   - enabled cost: this metric vs BM_LrLossAndGradient/500.
  const data::Dataset ds = make_batch(500, 28);
  ml::LogisticRegression model(ml::LogisticRegressionConfig{});
  std::vector<double> grad(model.parameter_count());
  obs::Telemetry telemetry;
  const obs::TelemetryScope scope(telemetry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.loss_and_gradient(ds.view(), grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          500);
}
BENCHMARK(BM_LrLossAndGradientTraced);

void BM_LrEvaluate(benchmark::State& state) {
  const data::Dataset ds = make_batch(1000, 28);
  ml::LogisticRegression model(ml::LogisticRegressionConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(ds.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_LrEvaluate);

void BM_FedAvgAggregate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<fl::LocalTrainResult> updates(k);
  for (auto& u : updates) {
    u.params.resize(7850);
    for (auto& p : u.params) p = rng.normal();
    u.samples_used = 3000;
  }
  std::vector<double> global;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fl::aggregate(updates, fl::AggregationRule::kUniformMean, global)
            .ok());
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(1)->Arg(10)->Arg(20);

void BM_SerializeModel(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> params(7850);
  for (auto& p : params) p = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::serialize_parameters(params));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ml::wire_size(7850)));
}
BENCHMARK(BM_SerializeModel);

void BM_DeserializeModel(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> params(7850);
  for (auto& p : params) p = rng.normal();
  const auto blob = ml::serialize_parameters(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::deserialize_parameters(blob.bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blob.bytes.size()));
}
BENCHMARK(BM_DeserializeModel);

void BM_SynthDigitRender(benchmark::State& state) {
  data::SynthDigitsConfig cfg;
  data::SynthDigits gen(cfg);
  std::vector<double> img(cfg.feature_dim());
  int label = 0;
  for (auto _ : state) {
    gen.render(label, img);
    label = (label + 1) % 10;
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_SynthDigitRender);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(Seconds{static_cast<double>((i * 37) % 1000)},
                    [&fired] { ++fired; });
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_PowerMeterCapture(benchmark::State& state) {
  energy::PowerStateTimeline tl;
  for (int round = 0; round < 10; ++round) {
    tl.push(energy::EdgeState::kWaiting, Seconds{0.2});
    tl.push(energy::EdgeState::kDownloading, Seconds{0.1});
    tl.push(energy::EdgeState::kTraining, Seconds{1.7});
    tl.push(energy::EdgeState::kUploading, Seconds{0.1});
  }
  energy::PowerMeter meter{energy::MeterConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(meter.capture(tl).energy());
  }
}
BENCHMARK(BM_PowerMeterCapture);

void BM_MlpLossAndGradient(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const data::Dataset ds = make_batch(n, 28);
  ml::MlpConfig cfg;
  ml::Mlp model(cfg);
  std::vector<double> grad(model.parameter_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.loss_and_gradient(ds.view(), grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MlpLossAndGradient)->Arg(100)->Arg(500);

void BM_FeiSystemRun(benchmark::State& state) {
  // End-to-end FedAvg + event-driven energy simulation, scaled down to a
  // couple of rounds.  The speedup-vs-baseline of this metric is the
  // headline number of the allocation-free/parallel hot-path work.
  auto cfg = sim::prototype_config();
  cfg.num_servers = 20;
  cfg.samples_per_server = 100;
  cfg.test_samples = 400;
  cfg.fl.clients_per_round = 10;
  cfg.fl.local_epochs = 40;
  cfg.fl.max_rounds = 2;
  cfg.seed = 3;
  for (auto _ : state) {
    sim::FeiSystem system(cfg);
    benchmark::DoNotOptimize(system.run().ok());
  }
}
BENCHMARK(BM_FeiSystemRun)->Unit(benchmark::kMillisecond);

void BM_AcsSolve(benchmark::State& state) {
  // How cheap is Algorithm 1?  (The paper runs it on the coordinator.)
  const core::ConvergenceBound bound(energy::paper_reference_constants(),
                                     0.05);
  const core::EnergyObjective obj(bound, 7.79e-5 * 3000 + 3.34e-3, 0.381,
                                  20);
  const core::AcsSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(obj).ok());
  }
}
BENCHMARK(BM_AcsSolve);

// Console output as usual, plus every finished run collected for the
// BENCH_micro.json report.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Result {
    std::string name;
    double ns_per_op = 0.0;
    eefei::bench::BenchReport::Extras extras;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double iters = static_cast<double>(run.iterations);
      if (iters <= 0.0) continue;
      Result r{run.benchmark_name(),
               run.real_accumulated_time / iters * 1e9,
               {}};
      if (const auto it = run.counters.find("bytes_per_second");
          it != run.counters.end()) {
        r.extras.emplace_back("gb_per_s",
                              static_cast<double>(it->second) / 1e9);
      }
      results.push_back(std::move(r));
    }
  }

  std::vector<Result> results;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  eefei::bench::BenchReport report("micro");
  // The dispatched kernel benches get a speedup_vs_scalar extra by pairing
  // them with their *Scalar twin from the same run — the scalar table is
  // bit-identical to the pre-SIMD code, so this ratio IS the SIMD win.
  const auto scalar_twin = [&](const std::string& name) -> double {
    const auto slash = name.find('/');
    if (slash == std::string::npos) return 0.0;
    const std::string twin =
        name.substr(0, slash) + "Scalar" + name.substr(slash);
    for (const auto& r : reporter.results) {
      if (r.name == twin) return r.ns_per_op;
    }
    return 0.0;
  };
  for (const auto& r : reporter.results) {
    auto extras = r.extras;
    if (r.name.starts_with("BM_Accumulate") &&
        r.name.find("Scalar") == std::string::npos) {
      if (const double scalar_ns = scalar_twin(r.name);
          scalar_ns > 0.0 && r.ns_per_op > 0.0) {
        extras.emplace_back("speedup_vs_scalar", scalar_ns / r.ns_per_op);
      }
    }
    report.add(r.name, r.ns_per_op, std::move(extras));
  }
  report.write();
  return 0;
}
