// Extension: the energy/time Pareto frontier of (K, E) operating points.
//
// Eq. 12 optimizes energy alone; this bench exposes the other axis an FEI
// operator cares about — wall-clock training time — and prints the
// non-dominated set together with where the pure-energy optimum (the
// paper's EE-FEI point) and the fastest point sit.
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "core/acs.h"
#include "core/pareto.h"
#include "core/planner.h"

using namespace eefei;

int main() {
  const bench::TotalTimeReport bench_report("pareto");
  std::printf("=== Energy/time Pareto frontier (prototype scale) ===\n\n");

  core::PlannerInputs inputs;  // prototype calibration
  const core::EeFeiPlanner planner(inputs);
  const auto objective = planner.objective();

  core::RoundTimeModel time_model;
  time_model.samples_per_server = inputs.samples_per_server;

  const auto sweep = core::pareto_sweep(objective, time_model);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n", sweep.error().message.c_str());
    return 1;
  }
  std::printf("%zu feasible lattice points, %zu on the frontier\n\n",
              sweep->points.size(), sweep->frontier.size());
  std::printf("%s\n", sweep->render_frontier(15).c_str());

  const auto plan = planner.plan();
  if (plan.ok()) {
    const auto t = objective.bound().optimal_rounds_int(
        static_cast<double>(plan->k), static_cast<double>(plan->e));
    if (t.ok()) {
      const Seconds makespan =
          time_model.round_duration(plan->k, plan->e) *
          static_cast<double>(t.value());
      std::printf("EE-FEI energy optimum: K=%zu E=%zu -> %.5g J, %.4g s "
                  "makespan\n", plan->k, plan->e, plan->predicted_energy_j,
                  makespan.value());
    }
  }
  const auto& fastest = sweep->frontier.front();
  const auto& cheapest = sweep->frontier.back();
  std::printf("fastest feasible point: K=%zu E=%zu -> %.5g J, %.4g s\n",
              fastest.k, fastest.e, fastest.energy_j,
              fastest.makespan.value());
  std::printf("cheapest feasible point: K=%zu E=%zu -> %.5g J, %.4g s\n",
              cheapest.k, cheapest.e, cheapest.energy_j,
              cheapest.makespan.value());
  std::printf("\nunder IID calibration the frontier is thin: K>1 costs both "
              "energy AND time, so only E trades.  Non-IID variance makes "
              "K genuinely buy speed:\n\n");

  core::PlannerInputs noniid = inputs;
  noniid.constants.a1 = 0.15;  // non-IID gradient variance
  const core::EeFeiPlanner noniid_planner(noniid);
  const auto sweep2 =
      core::pareto_sweep(noniid_planner.objective(), time_model);
  if (sweep2.ok()) {
    std::printf("=== non-IID scenario (A1 = 0.15) ===\n");
    std::printf("%zu feasible points, %zu on the frontier\n\n",
                sweep2->points.size(), sweep2->frontier.size());
    std::printf("%s\n", sweep2->render_frontier(15).c_str());
    std::printf("reading: with heterogeneous gradients, adding servers (K "
                "up to %zu on the frontier) buys wall-clock speed at an "
                "energy premium — the deadline/battery dial EE-FEI's "
                "single-objective Eq. 12 hides.\n",
                sweep2->frontier.front().k);
  }
  return 0;
}
