// Reproduces the paper's Fig. 6: total energy to train to the target
// accuracy as a function of E (local epochs) at K = K* = 1 — theoretical
// bound vs simulated measurement traces, the optimal E* from each, and the
// paper's headline number: the energy reduction achieved by EE-FEI's
// optimized (K*, E*) versus the naive (K=1, E=1) operating point
// (the paper reports 49.8% on the prototype).
#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

#include "bench_json.h"
#include "bench_common.h"
#include "common/table.h"
#include "core/planner.h"

using namespace eefei;

int main(int argc, char** argv) {
  const bench::TotalTimeReport bench_report("fig6");
  const auto scale = bench::scale_from_args(argc, argv);
  const std::size_t fixed_k = 1;  // the Fig. 5 result under IID data

  std::printf("=== Fig. 6: energy vs E at K=%zu, target accuracy %.2f ===\n\n",
              fixed_k, scale.target_accuracy);

  auto probe_cfg = bench::system_config(scale);
  sim::FeiSystem probe(probe_cfg);
  const auto model = probe.energy_model();
  const core::ConvergenceBound bound(energy::paper_reference_constants(),
                                     0.05);
  const auto objective =
      core::EnergyObjective::from_model(bound, model, scale.num_servers);

  AsciiTable table({"E", "theory_T", "theory_J", "sim_T", "sim_modeled_J",
                    "sim_total_J", "sim_acc"});
  std::ofstream csv("fig6_energy_vs_e.csv");
  csv << "e,theory_j,sim_modeled_j,sim_total_j,sim_rounds\n";

  double sim_e1_energy = 0.0;
  double sim_best_energy = std::numeric_limits<double>::infinity();
  std::size_t sim_best_e = 0;

  const std::vector<std::size_t> es{1, 2, 5, 10, 20, 40, 60, 100, 200, 400};
  for (const std::size_t e : es) {
    std::string theory_t = "-", theory_j = "-";
    double theory_val = 0.0;
    const auto t = bound.optimal_rounds_int(static_cast<double>(fixed_k),
                                            static_cast<double>(e));
    if (t.ok()) {
      theory_val = objective.value_at_rounds(
          static_cast<double>(fixed_k), static_cast<double>(e),
          static_cast<double>(t.value()));
      theory_t = std::to_string(t.value());
      theory_j = format_double(theory_val, 5);
    }

    // Cap scales inversely with E so every point gets a fair budget.
    const std::size_t cap = std::max<std::size_t>(20, 1500 / e + 10);
    const auto run = bench::run_to_target(scale, fixed_k, e, cap);
    std::string sim_t = "-", sim_mod = "-", sim_tot = "-", sim_acc = "-";
    double sim_modeled = 0.0, sim_total = 0.0;
    std::size_t sim_rounds = 0;
    if (run.has_value() && run->reached) {
      sim_rounds = run->rounds;
      sim_modeled = run->modeled_energy_j;
      sim_total = run->total_energy_j;
      sim_t = std::to_string(run->rounds);
      sim_mod = format_double(sim_modeled, 5);
      sim_tot = format_double(sim_total, 5);
      sim_acc = format_double(run->final_accuracy, 4);
      if (e == 1) sim_e1_energy = sim_modeled;
      if (sim_modeled < sim_best_energy) {
        sim_best_energy = sim_modeled;
        sim_best_e = e;
      }
    }
    table.add_row({std::to_string(e), theory_t, theory_j, sim_t, sim_mod,
                   sim_tot, sim_acc});
    csv << e << ',' << theory_val << ',' << sim_modeled << ',' << sim_total
        << ',' << sim_rounds << '\n';
  }
  std::printf("%s\n", table.render().c_str());

  // Theory E* (red asterisk) and the trace E* (black asterisk).
  core::PlannerInputs inputs;
  inputs.num_servers = scale.num_servers;
  inputs.samples_per_server = scale.samples_per_server;
  inputs.energy = model;
  const auto plan = core::EeFeiPlanner(inputs).plan();
  if (plan.ok()) {
    std::printf("theory optimum (bench scale): K*=%zu E*=%zu T*=%zu, "
                "predicted %.4g J\n", plan->k, plan->e, plan->t,
                plan->predicted_energy_j);
    for (const auto& c : plan->comparisons) {
      if (c.feasible && c.baseline.e == 1 && c.baseline.k == 1) {
        std::printf("theory savings vs K=1,E=1 (bench scale): %.1f%%\n",
                    100.0 * c.savings);
      }
    }
  }
  if (sim_e1_energy > 0.0 && sim_best_e > 0) {
    std::printf("measured-trace optimum: E*=%zu at %.4g J; savings vs E=1: "
                "%.1f%%\n", sim_best_e, sim_best_energy,
                100.0 * (1.0 - sim_best_energy / sim_e1_energy));
  }

  // The paper-scale headline: n_k = 3000 prototype coefficients.
  core::PlannerInputs proto;  // defaults == prototype calibration
  const auto headline = core::EeFeiPlanner(proto).plan();
  if (headline.ok() && !headline->comparisons.empty()) {
    std::printf("\npaper-scale headline (n_k=3000, prototype coefficients): "
                "K*=%zu E*=%zu, savings vs K=1,E=1 = %.1f%% "
                "(paper reports 49.8%%)\n", headline->k, headline->e,
                100.0 * headline->comparisons.front().savings);
  }
  std::printf("wrote fig6_energy_vs_e.csv\n");
  return 0;
}
